"""Static extraction of the project's switch-contract model.

The switch-parity and config–CLI–docs rules both need the same facts,
extracted from the tree without importing it:

* which **switch fields** :class:`repro.federated.config.FederatedConfig`
  declares, with their literal realizations and defaults — read from the
  dataclass body (``engine: str = "vectorized"``) and the membership checks
  in ``validate`` (``if self.engine not in ("loop", "vectorized")``),
* which realizations each subsystem **dispatches** on (string comparisons
  against a matching name anywhere in the library),
* which realizations the **equivalence suites** parametrize over and the
  **golden case grid** pins,
* which ``--flags`` the CLI exposes and which fields the README's engine
  table documents.

Everything here is resilient to absence: a missing anchor file yields an
empty model, and the rules translate absence into violations only when a
contract actually demands the file.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.core import SourceFile

__all__ = [
    "SwitchField",
    "RegistrySwitch",
    "extract_switch_fields",
    "registry_switches",
    "class_field_defaults",
    "cli_uses_switch_registry",
    "module_string_constants",
    "module_int_constants",
    "comparison_realizations",
    "int_comparison_constants",
    "all_int_constants",
    "golden_field_values",
    "golden_int_field_values",
    "cli_flags",
    "readme_documents_field",
    "class_field_names",
]

#: Project-relative anchor files the cross-file contracts are rooted in.
FEDERATED_CONFIG = "src/repro/federated/config.py"
EXPERIMENT_CONFIG = "src/repro/experiments/config.py"
SWITCH_REGISTRY_MODULE = "src/repro/federated/switches.py"
GOLDEN_CASES = "tests/golden/golden_cases.py"
CLI_MODULE = "src/repro/cli.py"
README = "README.md"

#: Modules whose string comparisons are *definitions* of the realization
#: sets, not dispatch sites — excluded from dispatch evidence so the
#: registry cannot trivially prove itself.
CONFIG_MODULES = (FEDERATED_CONFIG, EXPERIMENT_CONFIG, SWITCH_REGISTRY_MODULE)


@dataclass(frozen=True)
class SwitchField:
    """One literal-realization switch declared by ``FederatedConfig``."""

    name: str
    realizations: tuple[str, ...]
    default: str | None
    line: int


def extract_switch_fields(source: SourceFile) -> list[SwitchField]:
    """The switch fields declared by ``FederatedConfig`` in ``source``.

    A field counts as a switch when ``validate`` checks it against a tuple
    (or list, or module-level constant) of string literals.
    """
    if source.tree is None:
        return []
    constants = module_string_constants(source.tree)
    fields: list[SwitchField] = []
    for node in ast.walk(source.tree):
        if not (isinstance(node, ast.ClassDef) and node.name == "FederatedConfig"):
            continue
        defaults: dict[str, tuple[str, int]] = {}
        for statement in node.body:
            if (
                isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)
                and isinstance(statement.value, ast.Constant)
                and isinstance(statement.value.value, str)
            ):
                defaults[statement.target.id] = (statement.value.value, statement.lineno)
        for method in node.body:
            if not (isinstance(method, ast.FunctionDef) and method.name == "validate"):
                continue
            for compare in ast.walk(method):
                if not isinstance(compare, ast.Compare):
                    continue
                if len(compare.ops) != 1 or not isinstance(
                    compare.ops[0], (ast.In, ast.NotIn)
                ):
                    continue
                left = compare.left
                if not (
                    isinstance(left, ast.Attribute)
                    and isinstance(left.value, ast.Name)
                    and left.value.id == "self"
                ):
                    continue
                literals = _string_literals(compare.comparators[0], constants)
                if not literals:
                    continue
                default, line = defaults.get(left.attr, (None, compare.lineno))
                fields.append(
                    SwitchField(
                        name=left.attr,
                        realizations=tuple(literals),
                        default=default,
                        line=line,
                    )
                )
    return fields


@dataclass(frozen=True)
class RegistrySwitch:
    """One ``SwitchSpec(...)`` entry of the declarative switch registry.

    Extracted purely statically from the literal keyword arguments of each
    ``SwitchSpec`` call — which is exactly why the registry module requires
    them to be literals.
    """

    name: str
    kind: str
    default: str | int | float | None
    choices: tuple[str, ...]
    line: int


def registry_switches(source: SourceFile) -> list[RegistrySwitch]:
    """The switches declared by the ``SwitchSpec(...)`` registry in ``source``.

    Returns an empty list when the file is absent or declares no specs —
    the rules fall back to the legacy ``validate``-membership extraction
    (:func:`extract_switch_fields`) in that case, so fixture trees without a
    registry keep their historical behaviour.
    """
    if source.tree is None:
        return []
    switches: list[RegistrySwitch] = []
    for node in ast.walk(source.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "SwitchSpec"
        ):
            continue
        keywords: dict[str, ast.expr] = {
            keyword.arg: keyword.value for keyword in node.keywords if keyword.arg
        }
        name_node = keywords.get("name")
        kind_node = keywords.get("kind")
        if not (
            isinstance(name_node, ast.Constant)
            and isinstance(name_node.value, str)
            and isinstance(kind_node, ast.Constant)
            and isinstance(kind_node.value, str)
        ):
            continue
        default: str | int | float | None = None
        default_node = keywords.get("default")
        if isinstance(default_node, ast.Constant) and isinstance(
            default_node.value, (str, int, float, type(None))
        ):
            default = default_node.value
        choices: tuple[str, ...] = ()
        choices_node = keywords.get("choices")
        if choices_node is not None:
            choices = tuple(_string_literals(choices_node, {}))
        switches.append(
            RegistrySwitch(
                name=name_node.value,
                kind=kind_node.value,
                default=default,
                choices=choices,
                line=node.lineno,
            )
        )
    return switches


def class_field_defaults(
    source: SourceFile, class_name: str
) -> dict[str, str | int | float | None]:
    """Literal defaults of the annotated fields in ``class_name``'s body.

    Only constant defaults (strings, ints, floats, ``None``) are recorded;
    fields with computed defaults (``field(default_factory=...)``) are
    simply absent — the parity rules only compare what is statically known.
    """
    if source.tree is None:
        return {}
    for node in ast.walk(source.tree):
        if not (isinstance(node, ast.ClassDef) and node.name == class_name):
            continue
        defaults: dict[str, str | int | float | None] = {}
        for statement in node.body:
            if (
                isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)
                and isinstance(statement.value, ast.Constant)
                and isinstance(statement.value.value, (str, int, float, type(None)))
                and not isinstance(statement.value.value, bool)
            ):
                defaults[statement.target.id] = statement.value.value
        return defaults
    return {}


def cli_uses_switch_registry(source: SourceFile) -> bool:
    """Whether the CLI registers its switch flags from the registry.

    The registry idiom is ``parser.add_argument(spec.cli_flag, ...)`` inside
    a loop over the registry — statically visible as an ``add_argument``
    call whose first positional argument is an attribute access ending in
    ``cli_flag``.
    """
    if source.tree is None:
        return False
    for node in ast.walk(source.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
        ):
            continue
        if node.args and (
            isinstance(node.args[0], ast.Attribute)
            and node.args[0].attr == "cli_flag"
        ):
            return True
    return False


def module_string_constants(tree: ast.Module) -> dict[str, tuple[str, ...]]:
    """Module-level names bound to string literals or tuples/lists of them.

    Used to resolve idioms like ``SAMPLERS = ("permutation", "batched")``
    and ``for _engine in ENGINES`` without executing the module.
    """
    constants: dict[str, tuple[str, ...]] = {}
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        literals = _string_literals(value, {})
        if not literals:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                constants[target.id] = tuple(literals)
    return constants


def _string_literals(
    node: ast.expr, constants: dict[str, tuple[str, ...]]
) -> list[str]:
    """String literals contained in a constant, tuple/list, or known name."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, (ast.Tuple, ast.List)):
        out: list[str] = []
        for element in node.elts:
            out.extend(_string_literals(element, constants))
        return out
    if isinstance(node, ast.Name) and node.id in constants:
        return list(constants[node.id])
    return []


def module_int_constants(tree: ast.Module) -> dict[str, tuple[int, ...]]:
    """Module-level names bound to int literals or tuples/lists of them.

    The integer analogue of :func:`module_string_constants`, resolving
    idioms like ``WORKERS = (1, 2, 3, 7)`` in the equivalence suites.
    """
    constants: dict[str, tuple[int, ...]] = {}
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        literals = _int_literals(value, {})
        if not literals:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                constants[target.id] = tuple(literals)
    return constants


def _int_literals(node: ast.expr, constants: dict[str, tuple[int, ...]]) -> list[int]:
    """Int literals contained in a constant, tuple/list, or known name.

    ``bool`` constants are excluded: ``True`` is an ``int`` to Python but
    never an integer switch realization.
    """
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return [node.value]
    if isinstance(node, (ast.Tuple, ast.List)):
        out: list[int] = []
        for element in node.elts:
            out.extend(_int_literals(element, constants))
        return out
    if isinstance(node, ast.Name) and node.id in constants:
        return list(constants[node.id])
    return []


def _names_match(identifier: str, field_name: str) -> bool:
    """Whether a local/attribute name plausibly refers to a switch field.

    ``_sampler`` and ``sampler`` match ``sampler``; a bare ``engine`` local
    (e.g. an ``engine=`` parameter of the evaluation entry point) also
    matches ``eval_engine`` — dispatch evidence is deliberately a little
    generous, coverage requirements are not.
    """
    identifier = identifier.lstrip("_")
    return identifier == field_name or field_name.endswith("_" + identifier)


def comparison_realizations(
    sources: list[SourceFile], field_name: str
) -> set[str]:
    """Realization literals compared against ``field_name`` in ``sources``."""
    evidence: set[str] = set()
    for source in sources:
        if source.tree is None:
            continue
        constants = module_string_constants(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            sides = [node.left, *node.comparators]
            named = any(
                (isinstance(side, ast.Attribute) and _names_match(side.attr, field_name))
                or (isinstance(side, ast.Name) and _names_match(side.id, field_name))
                for side in sides
            )
            if not named:
                continue
            for side in sides:
                evidence.update(_string_literals(side, constants))
    return evidence


def int_comparison_constants(sources: list[SourceFile], field_name: str) -> set[int]:
    """Int literals compared against ``field_name`` in ``sources``.

    The dispatch evidence of an *integer* switch: ``if config.workers > 1``
    contributes ``{1}``.  Any comparison operator counts — an int switch
    dispatches on a threshold, not on membership in a realization tuple.
    """
    evidence: set[int] = set()
    for source in sources:
        if source.tree is None:
            continue
        constants = module_int_constants(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            sides = [node.left, *node.comparators]
            named = any(
                (isinstance(side, ast.Attribute) and _names_match(side.attr, field_name))
                or (isinstance(side, ast.Name) and _names_match(side.id, field_name))
                for side in sides
            )
            if not named:
                continue
            for side in sides:
                evidence.update(_int_literals(side, constants))
    return evidence


def all_string_constants(source: SourceFile) -> set[str]:
    """Every string literal appearing anywhere in ``source``."""
    if source.tree is None:
        return set()
    return {
        node.value
        for node in ast.walk(source.tree)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


def all_int_constants(source: SourceFile) -> set[int]:
    """Every int literal appearing anywhere in ``source`` (bools excluded)."""
    if source.tree is None:
        return set()
    return {
        node.value
        for node in ast.walk(source.tree)
        if isinstance(node, ast.Constant) and type(node.value) is int
    }


def golden_int_field_values(source: SourceFile, field_name: str) -> set[int]:
    """Int values the golden case grid explicitly assigns to ``field_name``.

    The integer analogue of :func:`golden_field_values`: literal dict entries
    (``"workers": 2``), keyword arguments and loop variables over literal int
    tuples all count.
    """
    if source.tree is None:
        return set()
    constants = module_int_constants(source.tree)
    loop_values: dict[str, tuple[int, ...]] = {}
    for node in ast.walk(source.tree):
        if isinstance(node, ast.For) and isinstance(node.target, ast.Name):
            literals = _int_literals(node.iter, constants)
            if literals:
                loop_values[node.target.id] = tuple(literals)
    resolver = {**constants, **loop_values}

    values: set[int] = set()

    def resolve(value: ast.expr) -> None:
        values.update(_int_literals(value, resolver))

    for node in ast.walk(source.tree):
        if isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == field_name
                    and value is not None
                ):
                    resolve(value)
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg == field_name:
                    resolve(keyword.value)
    return values


def golden_field_values(source: SourceFile, field_name: str) -> set[str]:
    """Values the golden case grid explicitly assigns to ``field_name``.

    Understands three idioms: literal dict entries (``"engine": "loop"``),
    keyword arguments (``ExperimentConfig(engine="loop")``) and loop
    variables ranging over literal tuples
    (``for _engine in ("loop", "vectorized"): ... {"engine": _engine}``).
    """
    if source.tree is None:
        return set()
    constants = module_string_constants(source.tree)
    loop_values: dict[str, tuple[str, ...]] = {}
    for node in ast.walk(source.tree):
        if isinstance(node, ast.For) and isinstance(node.target, ast.Name):
            literals = _string_literals(node.iter, constants)
            if literals:
                loop_values[node.target.id] = tuple(literals)
    resolver = {**constants, **loop_values}

    values: set[str] = set()

    def resolve(value: ast.expr) -> None:
        values.update(_string_literals(value, resolver))

    for node in ast.walk(source.tree):
        if isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == field_name
                    and value is not None
                ):
                    resolve(value)
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg == field_name:
                    resolve(keyword.value)
    return values


def cli_flags(source: SourceFile) -> set[str]:
    """Every ``--flag`` the CLI module registers via ``add_argument``."""
    if source.tree is None:
        return set()
    flags: set[str] = set()
    for node in ast.walk(source.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
        ):
            continue
        for argument in node.args:
            if (
                isinstance(argument, ast.Constant)
                and isinstance(argument.value, str)
                and argument.value.startswith("--")
            ):
                flags.add(argument.value)
    return flags


def readme_documents_field(text: str, field_name: str) -> bool:
    """Whether a README table row documents ``field_name``.

    A row is a markdown table line (starting with ``|``) containing the
    field name as a standalone token — ``engine`` does not match the
    ``eval_engine`` or ``--eval-engine`` rows.
    """
    pattern = re.compile(r"(?<![\w-])" + re.escape(field_name) + r"(?![\w-])")
    for line in text.splitlines():
        if line.lstrip().startswith("|") and pattern.search(line):
            return True
    return False


def class_field_names(source: SourceFile, class_name: str) -> set[str]:
    """Names of the annotated fields in ``class_name``'s body."""
    if source.tree is None:
        return set()
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return {
                statement.target.id
                for statement in node.body
                if isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)
            }
    return set()


def iter_calls(tree: ast.Module) -> Iterator[ast.Call]:
    """All call expressions in ``tree`` (shared by several rules)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node
