"""R8 — protocol-dispatch.

Scoring models are consumed through the structural
:class:`~repro.models.base.ScorerProtocol` — an object that can ``score``
and ``score_block`` *is* a scorer, whatever its class.  An
``isinstance``/``issubclass`` check against a concrete model class outside
``models/`` re-introduces nominal dispatch: code starts branching per model
type, and the next scorer (the MLP adapter was the first) needs edits in
every such branch instead of just implementing the protocol.

This rule forbids ``isinstance``/``issubclass`` calls whose class argument
names a concrete model class (:data:`MODEL_CLASS_NAMES`) in library files
outside ``src/repro/models/``.  Checks against ``ScorerProtocol`` itself are
the sanctioned structural dispatch
(:func:`repro.metrics.evaluation.resolve_score_block` is the canonical
site) and are always allowed, as are the model classes' own modules (a
class may know itself) and test files (asserting concrete types is what
tests do).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileRule, Project, SourceFile, Violation, register

__all__ = ["ProtocolDispatchRule", "MODEL_CLASS_NAMES"]

#: Concrete model classes that must never be nominally dispatched on
#: outside ``src/repro/models/``.  ``ScorerProtocol`` is deliberately
#: absent: structural checks against the protocol are the sanctioned form.
MODEL_CLASS_NAMES = (
    "Recommender",
    "MatrixFactorizationModel",
    "MLPScorer",
    "MLPRecommender",
)

#: The directory whose files may check concrete model classes.
_MODELS_PREFIX = "src/repro/models/"


def _named_classes(node: ast.expr) -> Iterator[str]:
    """Class names referenced by an isinstance/issubclass class argument."""
    if isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, ast.Attribute):
        yield node.attr
    elif isinstance(node, ast.Tuple):
        for element in node.elts:
            yield from _named_classes(element)


@register
class ProtocolDispatchRule(FileRule):
    id = "R8"
    name = "protocol-dispatch"
    summary = (
        "models are consumed through ScorerProtocol: no isinstance/issubclass "
        "against concrete model classes outside models/"
    )

    def applies_to(self, source: SourceFile) -> bool:
        return (
            not source.is_test_context
            and source.rel.startswith("src/")
            and not source.rel.startswith(_MODELS_PREFIX)
        )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Violation]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("isinstance", "issubclass")
                and len(node.args) == 2
            ):
                continue
            for class_name in _named_classes(node.args[1]):
                if class_name in MODEL_CLASS_NAMES:
                    yield Violation(
                        rule=self.id,
                        path=source.rel,
                        line=node.lineno,
                        message=(
                            f"{node.func.id} against concrete model class "
                            f"{class_name!r}; dispatch through ScorerProtocol "
                            "(see repro.metrics.evaluation.resolve_score_block) "
                            "instead of nominal model checks"
                        ),
                    )
