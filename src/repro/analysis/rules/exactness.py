"""R4 — bit-exactness lint.

The equivalence suites and the golden seed-history harness are the proof
of the repository's central claim: fast engines replay the *same* histories
as their loop oracles under a pinned RNG contract.  An
``assert_allclose`` in one of those suites weakens the proof to "roughly
the same" — default tolerances (``rtol=1e-7``) happily absorb a real
stream drift for a while, which is exactly the silent decay the golden
harness exists to prevent.

This rule flags every approximate comparison (``assert_allclose``,
``np.allclose`` / ``np.isclose``, ``pytest.approx``,
``assert_array_almost_equal``, ...) in the equivalence, fusion and golden
test modules.  Where a suite genuinely pins a *tolerance* contract (the
loop and vectorized training engines differ by floating-point summation
order, documented in ``FederatedConfig``), the site keeps the approximate
assert under a per-line suppression whose reason states the contract.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.analysis.core import FileRule, Project, SourceFile, Violation, register

__all__ = ["BitExactnessRule"]

_APPROX_FUNCTIONS = frozenset(
    {
        "assert_allclose",
        "allclose",
        "isclose",
        "approx",
        "assert_almost_equal",
        "assert_array_almost_equal",
        "assert_approx_equal",
    }
)


def _in_scope(rel: str) -> bool:
    if rel.startswith("tests/golden/"):
        return True
    name = Path(rel).name
    return rel.startswith("tests/") and ("equivalence" in name or "fusion" in name)


@register
class BitExactnessRule(FileRule):
    id = "R4"
    name = "bit-exactness"
    summary = (
        "equivalence/fusion/golden suites assert exact equality; approximate "
        "comparisons need an explicit tolerance-contract suppression"
    )

    def applies_to(self, source: SourceFile) -> bool:
        return _in_scope(source.rel)

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Violation]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Attribute) and func.attr in _APPROX_FUNCTIONS:
                name = func.attr
            elif isinstance(func, ast.Name) and func.id in _APPROX_FUNCTIONS:
                name = func.id
            if name is None:
                continue
            yield Violation(
                rule=self.id,
                path=source.rel,
                line=node.lineno,
                message=(
                    f"{name} in an exactness suite: assert exact equality "
                    "(assert_array_equal / ==), or suppress with the documented "
                    "tolerance contract as the reason"
                ),
            )
