"""R1 — RNG discipline.

The reproducibility story of this repository is "one master seed, named
:class:`~repro.rng.SeedSequenceFactory` streams, explicit generators
everywhere".  A single naked ``np.random.default_rng()`` (fresh OS entropy)
or legacy ``np.random.seed`` / module-level distribution call silently
breaks it.  This rule enforces:

* **library code** (under ``src/``) never constructs generators directly —
  it accepts ``rng: np.random.Generator | int | None`` and routes it
  through :func:`repro.rng.ensure_rng`; only :mod:`repro.rng` itself may
  call ``np.random.default_rng``,
* **test / benchmark / example code** may build seeded generators
  (``np.random.default_rng(7)``), but implicit entropy
  (``default_rng()`` / ``default_rng(None)``) is flagged everywhere,
* the legacy global-state API (``np.random.seed``, ``np.random.rand``,
  ``np.random.RandomState``, ...) is flagged everywhere,
* library parameters named ``rng`` / ``seed`` carry annotations naming
  ``Generator`` / ``int``, so the explicit-stream contract is visible in
  every signature.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileRule, Project, SourceFile, Violation, register

__all__ = ["RngDisciplineRule"]

#: The one module allowed to touch ``np.random`` constructors directly.
EXEMPT_SUFFIX = "repro/rng.py"

#: Legacy module-level functions that draw from (or mutate) the hidden
#: global ``RandomState`` — never acceptable in a pinned-seed codebase.
LEGACY_FUNCTIONS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "standard_normal",
        "exponential",
        "binomial",
        "poisson",
        "beta",
        "gamma",
        "RandomState",
    }
)


@register
class RngDisciplineRule(FileRule):
    id = "R1"
    name = "rng-discipline"
    summary = (
        "randomness routes through repro.rng: no direct np.random constructors "
        "in library code, no implicit entropy anywhere, no legacy global-state API"
    )

    def applies_to(self, source: SourceFile) -> bool:
        return not source.rel.endswith(EXEMPT_SUFFIX)

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Violation]:
        assert source.tree is not None
        numpy_aliases, random_aliases = _numpy_aliases(source.tree)
        library = not source.is_test_context

        call_targets = {
            id(node.func) for node in ast.walk(source.tree) if isinstance(node, ast.Call)
        }
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                for alias in node.names:
                    if alias.name == "default_rng" or alias.name in LEGACY_FUNCTIONS:
                        yield Violation(
                            rule=self.id,
                            path=source.rel,
                            line=node.lineno,
                            message=(
                                f"do not import numpy.random.{alias.name} directly; "
                                "route randomness through repro.rng"
                            ),
                        )
                continue
            if isinstance(node, ast.Attribute) and id(node) not in call_targets:
                referenced = _numpy_random_function(node, numpy_aliases, random_aliases)
                if referenced == "default_rng" or (
                    referenced in LEGACY_FUNCTIONS and referenced != "RandomState"
                ):
                    yield Violation(
                        rule=self.id,
                        path=source.rel,
                        line=node.lineno,
                        message=(
                            f"bare reference to np.random.{referenced} (e.g. as a "
                            "default_factory / callback) constructs implicit-entropy "
                            "streams; route through repro.rng.ensure_rng"
                        ),
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            name = _numpy_random_function(node.func, numpy_aliases, random_aliases)
            if name is None:
                continue
            if name == "default_rng":
                implicit = not node.args or (
                    isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                )
                if implicit:
                    yield Violation(
                        rule=self.id,
                        path=source.rel,
                        line=node.lineno,
                        message=(
                            "implicit-entropy np.random.default_rng() breaks "
                            "reproducibility; pass an explicit seed or use "
                            "repro.rng.ensure_rng"
                        ),
                    )
                elif library:
                    yield Violation(
                        rule=self.id,
                        path=source.rel,
                        line=node.lineno,
                        message=(
                            "library code must not construct generators directly; "
                            "accept rng: np.random.Generator | int | None and route "
                            "it through repro.rng.ensure_rng"
                        ),
                    )
            elif name in LEGACY_FUNCTIONS:
                yield Violation(
                    rule=self.id,
                    path=source.rel,
                    line=node.lineno,
                    message=(
                        f"np.random.{name} uses the hidden legacy global state; "
                        "draw from an explicit np.random.Generator stream instead"
                    ),
                )

        if library:
            yield from self._check_signatures(source)

    def _check_signatures(self, source: SourceFile) -> Iterator[Violation]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            arguments = node.args
            for argument in (
                *arguments.posonlyargs,
                *arguments.args,
                *arguments.kwonlyargs,
            ):
                if argument.annotation is None:
                    continue  # R7 owns missing annotations
                annotation = ast.unparse(argument.annotation)
                if argument.arg == "rng" and "Generator" not in annotation:
                    yield Violation(
                        rule=self.id,
                        path=source.rel,
                        line=argument.lineno,
                        message=(
                            f"parameter 'rng' of {node.name}() is annotated "
                            f"{annotation!r}; the stream contract wants "
                            "np.random.Generator (optionally | int | None via "
                            "ensure_rng)"
                        ),
                    )
                if argument.arg == "seed" and not (
                    "int" in annotation or "Seed" in annotation
                ):
                    yield Violation(
                        rule=self.id,
                        path=source.rel,
                        line=argument.lineno,
                        message=(
                            f"parameter 'seed' of {node.name}() is annotated "
                            f"{annotation!r}; seeds are ints (or SeedSequence "
                            "factories)"
                        ),
                    )


def _numpy_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """Local names bound to ``numpy`` and to ``numpy.random``."""
    numpy_aliases: set[str] = set()
    random_aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy" or alias.name.startswith("numpy."):
                    numpy_aliases.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    random_aliases.add(alias.asname or alias.name)
    return numpy_aliases, random_aliases


def _numpy_random_function(
    func: ast.expr, numpy_aliases: set[str], random_aliases: set[str]
) -> str | None:
    """The ``numpy.random.<name>`` a call expression resolves to, if any."""
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if (
        isinstance(value, ast.Attribute)
        and value.attr == "random"
        and isinstance(value.value, ast.Name)
        and value.value.id in numpy_aliases
    ):
        return func.attr
    if isinstance(value, ast.Name) and value.id in random_aliases:
        return func.attr
    return None
