"""R5 — config–CLI–docs sync.

A switch that exists only in ``FederatedConfig`` is invisible: users drive
experiments through :class:`~repro.experiments.config.ExperimentConfig`,
the ``fedrecattack`` CLI and the README's engine table.  This rule keeps
the surfaces in lock-step for every user-facing switch field.

When the tree declares the switch registry
(``src/repro/federated/switches.py``), the registry *is* the switch list —
every ``SwitchSpec`` entry is checked, and two extra legs apply:

* both config dataclasses must declare the field, and any literal dataclass
  default must equal the registry default (one default, stated once),
* the CLI leg is satisfied either by a literal ``--flag`` registration or
  by the registry idiom (``add_argument(spec.cli_flag, ...)``), which
  covers every registered switch at once.

Trees without a registry (the lint fixtures, historical checkouts) fall
back to the legacy switch list: the literal-realization switches extracted
for R2 plus :data:`EXTRA_SWITCH_FIELDS` (numeric switches like
``fuse_rounds`` that have no literal realization tuple).

Always checked per switch:

* the field exists on ``ExperimentConfig`` (the experiment layer forwards
  it to the protocol layer),
* ``src/repro/cli.py`` exposes the matching ``--flag``,
* a README table row documents the field.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import project as model
from repro.analysis.core import Project, Rule, SourceFile, Violation, register

__all__ = ["ConfigCliDocsSyncRule", "EXTRA_SWITCH_FIELDS"]

#: User-facing switch fields without a literal realization tuple — the
#: legacy fallback list used only when the tree has no switch registry (the
#: registry declares these as ``kind="int"`` / ``kind="float"`` specs).
EXTRA_SWITCH_FIELDS = ("fuse_rounds", "workers")


@register
class ConfigCliDocsSyncRule(Rule):
    id = "R5"
    name = "config-cli-docs-sync"
    summary = (
        "every user-facing switch field has an ExperimentConfig mirror, a CLI "
        "flag and a README engine-table row"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        config = project.source(model.FEDERATED_CONFIG)
        if config is None:
            return
        registry = project.source(model.SWITCH_REGISTRY_MODULE)
        registered = model.registry_switches(registry) if registry is not None else []
        if registered:
            assert registry is not None
            yield from self._check_with_registry(project, config, registry, registered)
            return
        yield from self._check_legacy(project, config)

    def _check_with_registry(
        self,
        project: Project,
        config: SourceFile,
        registry: SourceFile,
        registered: list[model.RegistrySwitch],
    ) -> Iterator[Violation]:
        federated_fields = model.class_field_names(config, "FederatedConfig")
        federated_defaults = model.class_field_defaults(config, "FederatedConfig")
        experiment = project.source(model.EXPERIMENT_CONFIG)
        experiment_fields = (
            model.class_field_names(experiment, "ExperimentConfig")
            if experiment is not None
            else None
        )
        experiment_defaults = (
            model.class_field_defaults(experiment, "ExperimentConfig")
            if experiment is not None
            else {}
        )
        cli = project.source(model.CLI_MODULE)
        flags = model.cli_flags(cli) if cli is not None else None
        cli_registry_driven = model.cli_uses_switch_registry(cli) if cli is not None else False
        readme_text = self._readme_text(project)

        for switch in registered:
            name, line = switch.name, switch.line
            if name not in federated_fields:
                yield self._violation(
                    registry,
                    line,
                    f"registry switch {name!r} is not declared as a "
                    "FederatedConfig field",
                )
            else:
                declared_default = federated_defaults.get(name, switch.default)
                if declared_default != switch.default:
                    yield self._violation(
                        registry,
                        line,
                        f"FederatedConfig default for {name!r} "
                        f"({declared_default!r}) disagrees with the registry "
                        f"default ({switch.default!r})",
                    )
            if experiment_fields is None:
                yield self._violation(
                    registry,
                    line,
                    f"cannot verify {name!r}: {model.EXPERIMENT_CONFIG} not found",
                )
            elif name not in experiment_fields:
                yield self._violation(
                    registry,
                    line,
                    f"switch field {name!r} has no ExperimentConfig mirror field",
                )
            else:
                mirror_default = experiment_defaults.get(name, switch.default)
                if mirror_default != switch.default:
                    yield self._violation(
                        registry,
                        line,
                        f"ExperimentConfig default for {name!r} "
                        f"({mirror_default!r}) disagrees with the registry "
                        f"default ({switch.default!r})",
                    )
            flag = "--" + name.replace("_", "-")
            if flags is None:
                yield self._violation(
                    registry, line, f"cannot verify {flag!r}: {model.CLI_MODULE} not found"
                )
            elif not cli_registry_driven and flag not in flags:
                yield self._violation(
                    registry,
                    line,
                    f"switch field {name!r} has no CLI flag {flag!r} in "
                    f"{model.CLI_MODULE} (and the CLI does not register flags "
                    "from the switch registry)",
                )
            yield from self._check_readme(registry, line, name, readme_text)

    def _check_legacy(self, project: Project, config: SourceFile) -> Iterator[Violation]:
        switch_names = [field.name for field in model.extract_switch_fields(config)]
        declared = model.class_field_names(config, "FederatedConfig")
        for extra in EXTRA_SWITCH_FIELDS:
            if extra in declared and extra not in switch_names:
                switch_names.append(extra)
        if not switch_names:
            return
        lines = _field_lines(config)

        experiment = project.source(model.EXPERIMENT_CONFIG)
        experiment_fields = (
            model.class_field_names(experiment, "ExperimentConfig")
            if experiment is not None
            else None
        )
        cli = project.source(model.CLI_MODULE)
        flags = model.cli_flags(cli) if cli is not None else None
        readme_text = self._readme_text(project)

        for name in switch_names:
            line = lines.get(name, 1)
            if experiment_fields is None:
                yield self._violation(
                    config, line, f"cannot verify {name!r}: {model.EXPERIMENT_CONFIG} not found"
                )
            elif name not in experiment_fields:
                yield self._violation(
                    config,
                    line,
                    f"switch field {name!r} has no ExperimentConfig mirror field",
                )
            flag = "--" + name.replace("_", "-")
            if flags is None:
                yield self._violation(
                    config, line, f"cannot verify {flag!r}: {model.CLI_MODULE} not found"
                )
            elif flag not in flags:
                yield self._violation(
                    config,
                    line,
                    f"switch field {name!r} has no CLI flag {flag!r} in {model.CLI_MODULE}",
                )
            yield from self._check_readme(config, line, name, readme_text)

    def _check_readme(
        self, anchor: SourceFile, line: int, name: str, readme_text: str | None
    ) -> Iterator[Violation]:
        if readme_text is None:
            yield self._violation(
                anchor, line, f"cannot verify README row for {name!r}: README.md not found"
            )
        elif not model.readme_documents_field(readme_text, name):
            yield self._violation(
                anchor,
                line,
                f"switch field {name!r} has no README engine-table row "
                "(a markdown table line naming the field)",
            )

    def _readme_text(self, project: Project) -> str | None:
        readme_path = project.root / model.README
        return readme_path.read_text(encoding="utf-8") if readme_path.is_file() else None

    def _violation(self, anchor: SourceFile, line: int, message: str) -> Violation:
        return Violation(rule=self.id, path=anchor.rel, line=line, message=message)


def _field_lines(config: SourceFile) -> dict[str, int]:
    """Line numbers of ``FederatedConfig``'s annotated fields."""
    assert config.tree is not None
    for node in ast.walk(config.tree):
        if isinstance(node, ast.ClassDef) and node.name == "FederatedConfig":
            return {
                statement.target.id: statement.lineno
                for statement in node.body
                if isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)
            }
    return {}
