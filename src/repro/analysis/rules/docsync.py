"""R5 — config–CLI–docs sync.

A switch that exists only in ``FederatedConfig`` is invisible: users drive
experiments through :class:`~repro.experiments.config.ExperimentConfig`,
the ``fedrecattack`` CLI and the README's engine table.  This rule keeps
the four surfaces in lock-step for every user-facing switch field — the
literal-realization switches extracted for R2 plus the fields listed in
:data:`EXTRA_SWITCH_FIELDS` (numeric switches like ``fuse_rounds`` that
have no literal realization tuple):

* the field exists on ``ExperimentConfig`` (the experiment layer forwards
  it to the protocol layer),
* ``src/repro/cli.py`` registers the matching ``--flag``,
* a README table row documents the field.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import project as model
from repro.analysis.core import Project, Rule, SourceFile, Violation, register

__all__ = ["ConfigCliDocsSyncRule", "EXTRA_SWITCH_FIELDS"]

#: User-facing switch fields without a literal realization tuple.
EXTRA_SWITCH_FIELDS = ("fuse_rounds", "workers")


@register
class ConfigCliDocsSyncRule(Rule):
    id = "R5"
    name = "config-cli-docs-sync"
    summary = (
        "every user-facing switch field has an ExperimentConfig mirror, a CLI "
        "flag and a README engine-table row"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        config = project.source(model.FEDERATED_CONFIG)
        if config is None:
            return
        switch_names = [field.name for field in model.extract_switch_fields(config)]
        declared = model.class_field_names(config, "FederatedConfig")
        for extra in EXTRA_SWITCH_FIELDS:
            if extra in declared and extra not in switch_names:
                switch_names.append(extra)
        if not switch_names:
            return
        lines = _field_lines(config)

        experiment = project.source(model.EXPERIMENT_CONFIG)
        experiment_fields = (
            model.class_field_names(experiment, "ExperimentConfig")
            if experiment is not None
            else None
        )
        cli = project.source(model.CLI_MODULE)
        flags = model.cli_flags(cli) if cli is not None else None
        readme_path = project.root / model.README
        readme_text = (
            readme_path.read_text(encoding="utf-8") if readme_path.is_file() else None
        )

        for name in switch_names:
            line = lines.get(name, 1)
            if experiment_fields is None:
                yield self._violation(
                    config, line, f"cannot verify {name!r}: {model.EXPERIMENT_CONFIG} not found"
                )
            elif name not in experiment_fields:
                yield self._violation(
                    config,
                    line,
                    f"switch field {name!r} has no ExperimentConfig mirror field",
                )
            flag = "--" + name.replace("_", "-")
            if flags is None:
                yield self._violation(
                    config, line, f"cannot verify {flag!r}: {model.CLI_MODULE} not found"
                )
            elif flag not in flags:
                yield self._violation(
                    config,
                    line,
                    f"switch field {name!r} has no CLI flag {flag!r} in {model.CLI_MODULE}",
                )
            if readme_text is None:
                yield self._violation(
                    config, line, f"cannot verify README row for {name!r}: README.md not found"
                )
            elif not model.readme_documents_field(readme_text, name):
                yield self._violation(
                    config,
                    line,
                    f"switch field {name!r} has no README engine-table row "
                    "(a markdown table line naming the field)",
                )

    def _violation(self, config: SourceFile, line: int, message: str) -> Violation:
        return Violation(rule=self.id, path=config.rel, line=line, message=message)


def _field_lines(config: SourceFile) -> dict[str, int]:
    """Line numbers of ``FederatedConfig``'s annotated fields."""
    assert config.tree is not None
    for node in ast.walk(config.tree):
        if isinstance(node, ast.ClassDef) and node.name == "FederatedConfig":
            return {
                statement.target.id: statement.lineno
                for statement in node.body
                if isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)
            }
    return {}
