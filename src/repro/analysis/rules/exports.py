"""R6 — export consistency.

Every module in this repository declares ``__all__``; with the ``py.typed``
marker the exported surface is also the typed surface, so a stale entry
(renamed function, deleted class) breaks ``from repro.x import *`` users
and type checkers alike.  This rule verifies, per module that declares
``__all__``:

* the declaration is a literal list/tuple of strings (a dynamically built
  ``__all__`` cannot be checked — or trusted — statically),
* every exported name is actually bound at module top level (definition,
  assignment or import; modules with a ``*`` re-export are skipped since
  their bindings are not statically knowable),
* no name is exported twice.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileRule, Project, SourceFile, Violation, register

__all__ = ["ExportConsistencyRule"]


@register
class ExportConsistencyRule(FileRule):
    id = "R6"
    name = "export-consistency"
    summary = "__all__ is a literal list of unique names that exist in the module"

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Violation]:
        assert source.tree is not None
        declaration = _find_all_declaration(source.tree)
        if declaration is None:
            return
        node, value = declaration
        exported = _literal_names(value)
        if exported is None:
            yield Violation(
                rule=self.id,
                path=source.rel,
                line=node.lineno,
                message=(
                    "__all__ must be a literal list/tuple of string names so the "
                    "exported surface is statically checkable"
                ),
            )
            return
        seen: set[str] = set()
        for name in exported:
            if name in seen:
                yield Violation(
                    rule=self.id,
                    path=source.rel,
                    line=node.lineno,
                    message=f"__all__ exports {name!r} more than once",
                )
            seen.add(name)
        defined, has_star = _module_bindings(source.tree)
        if has_star:
            return
        for name in exported:
            if name not in defined:
                yield Violation(
                    rule=self.id,
                    path=source.rel,
                    line=node.lineno,
                    message=(
                        f"__all__ exports {name!r} but the module defines no such "
                        "name"
                    ),
                )


def _find_all_declaration(
    tree: ast.Module,
) -> tuple[ast.stmt, ast.expr] | None:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return node, node.value
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == "__all__"
            and node.value is not None
        ):
            return node, node.value
    return None


def _literal_names(value: ast.expr) -> list[str] | None:
    if not isinstance(value, (ast.List, ast.Tuple)):
        return None
    names: list[str] = []
    for element in value.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        names.append(element.value)
    return names


def _module_bindings(tree: ast.Module) -> tuple[set[str], bool]:
    """Names bound at module top level, and whether a ``*`` import exists.

    Top level includes the bodies of module-level ``if`` / ``try`` / ``with``
    / loop statements (e.g. ``if TYPE_CHECKING:`` imports), matching how the
    interpreter binds them.
    """
    names: set[str] = set()
    has_star = False

    def add_target(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                add_target(element)
        elif isinstance(target, ast.Starred):
            add_target(target.value)

    def visit(body: list[ast.stmt]) -> None:
        nonlocal has_star
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    add_target(target)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                add_target(node.target)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    names.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        has_star = True
                    else:
                        names.add(alias.asname or alias.name)
            elif isinstance(node, ast.If):
                visit(node.body)
                visit(node.orelse)
            elif isinstance(node, ast.Try):
                visit(node.body)
                visit(node.orelse)
                visit(node.finalbody)
                for handler in node.handlers:
                    visit(handler.body)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                add_target(node.target)
                visit(node.body)
                visit(node.orelse)
            elif isinstance(node, ast.While):
                visit(node.body)
                visit(node.orelse)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        add_target(item.optional_vars)
                visit(node.body)

    visit(tree.body)
    return names, has_star
