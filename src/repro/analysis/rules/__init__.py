"""Built-in ``repro-lint`` rules.

Importing this package registers every rule in
:data:`repro.analysis.core.RULES`:

========  =======================  ====================================================
Rule id   Name                     Contract it protects
========  =======================  ====================================================
``R1``    rng-discipline           all randomness routes through :mod:`repro.rng`
``R2``    switch-parity            every switch realization has dispatch + equivalence
                                   parametrization + a golden seed-history case
``R3``    densification-guard      store-backed masks / sparse updates stay sparse
``R4``    bit-exactness            equivalence & golden suites assert exact equality
``R5``    config-cli-docs-sync     switch fields exist in ExperimentConfig, the CLI
                                   and the README engine table
``R6``    export-consistency       ``__all__`` names exist and are unique
``R7``    typed-signatures         library signatures fully annotated, no bare generics
``R8``    protocol-dispatch        models consumed through ScorerProtocol: no
                                   isinstance on concrete model classes outside models/
========  =======================  ====================================================

Plus the runner-level pseudo-rules ``SYNTAX`` (unparsable file) and ``SUP``
(suppression hygiene), which cannot be suppressed.
"""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401  (imported for registration)
    densify,
    docsync,
    exactness,
    exports,
    parity,
    protocol,
    rng,
    typing,
)

__all__ = [
    "densify",
    "docsync",
    "exactness",
    "exports",
    "parity",
    "protocol",
    "rng",
    "typing",
]
