"""R7 — typed signatures.

``mypy --strict`` gates the library in CI, but mypy is a heavyweight,
sometimes-absent dependency; this rule enforces the *structural* half of
strictness with the stdlib so a bare checkout (and the pre-commit hook)
catches the common regressions instantly:

* every function in library code annotates every parameter and its return
  type (``self`` / ``cls`` receivers excepted) — mypy's
  ``disallow_untyped_defs`` / ``disallow_incomplete_defs``,
* no bare generic annotations (``dict`` for ``dict[str, Any]``, ``list``,
  ``tuple``, ``Callable``, ...) in signatures or field declarations —
  mypy's ``disallow_any_generics``.

What it deliberately does **not** re-implement: inference, assignment
compatibility, overload resolution.  That is mypy's job; this rule keeps
the annotation surface complete so mypy's strict run stays meaningful.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileRule, Project, SourceFile, Violation, register

__all__ = ["TypedSignaturesRule"]

#: Generic types that must be parameterized when used as annotations.
_BARE_GENERICS = frozenset(
    {"dict", "list", "tuple", "set", "frozenset", "Callable", "Dict", "List",
     "Tuple", "Set", "FrozenSet", "Sequence", "Mapping", "Iterator", "Iterable"}
)


@register
class TypedSignaturesRule(FileRule):
    id = "R7"
    name = "typed-signatures"
    summary = (
        "library functions annotate every parameter and return type, with no "
        "bare generics"
    )

    def applies_to(self, source: SourceFile) -> bool:
        return not source.is_test_context

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Violation]:
        assert source.tree is not None
        yield from self._visit(source, source.tree.body, inside_class=False)

    def _visit(
        self, source: SourceFile, body: list[ast.stmt], inside_class: bool
    ) -> Iterator[Violation]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(source, node, inside_class)
                yield from self._visit(source, node.body, inside_class=False)
            elif isinstance(node, ast.ClassDef):
                yield from self._visit(source, node.body, inside_class=True)
            elif isinstance(node, ast.AnnAssign):
                yield from self._check_annotation(source, node.annotation)
            elif isinstance(node, (ast.If, ast.Try, ast.For, ast.While, ast.With)):
                yield from self._visit_nested(source, node, inside_class)

    def _visit_nested(
        self, source: SourceFile, node: ast.stmt, inside_class: bool
    ) -> Iterator[Violation]:
        for field_name in ("body", "orelse", "finalbody"):
            children = getattr(node, field_name, None)
            if children:
                yield from self._visit(source, children, inside_class)
        for handler in getattr(node, "handlers", []) or []:
            yield from self._visit(source, handler.body, inside_class)

    def _check_function(
        self,
        source: SourceFile,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        inside_class: bool,
    ) -> Iterator[Violation]:
        arguments = node.args
        positional = [*arguments.posonlyargs, *arguments.args]
        missing: list[str] = []
        for index, argument in enumerate(positional):
            if inside_class and index == 0 and argument.arg in ("self", "cls"):
                continue
            if argument.annotation is None:
                missing.append(argument.arg)
            else:
                yield from self._check_annotation(source, argument.annotation)
        for argument in arguments.kwonlyargs:
            if argument.annotation is None:
                missing.append(argument.arg)
            else:
                yield from self._check_annotation(source, argument.annotation)
        for vararg, prefix in ((arguments.vararg, "*"), (arguments.kwarg, "**")):
            if vararg is None:
                continue
            if vararg.annotation is None:
                missing.append(prefix + vararg.arg)
            else:
                yield from self._check_annotation(source, vararg.annotation)
        if missing:
            yield Violation(
                rule=self.id,
                path=source.rel,
                line=node.lineno,
                message=(
                    f"{node.name}() leaves parameter(s) "
                    f"{', '.join(repr(name) for name in missing)} unannotated"
                ),
            )
        if node.returns is None:
            yield Violation(
                rule=self.id,
                path=source.rel,
                line=node.lineno,
                message=f"{node.name}() has no return annotation",
            )
        else:
            yield from self._check_annotation(source, node.returns)

    def _check_annotation(
        self, source: SourceFile, annotation: ast.expr
    ) -> Iterator[Violation]:
        for bare in _bare_generics(annotation):
            yield Violation(
                rule=self.id,
                path=source.rel,
                line=annotation.lineno,
                message=(
                    f"bare generic annotation {bare!r}: parameterize it "
                    f"(e.g. {bare}[...]) so mypy --strict keeps its precision"
                ),
            )


def _bare_generics(annotation: ast.expr) -> list[str]:
    """Bare generic names used inside ``annotation``.

    A generic name is *bare* when it is not the value of a ``Subscript``
    (``dict`` alone vs ``dict[str, int]``).  String annotations are parsed
    and inspected the same way.
    """
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return []
    subscripted: set[int] = set()
    for node in ast.walk(annotation):
        if isinstance(node, ast.Subscript):
            subscripted.add(id(node.value))
    bare: list[str] = []
    for node in ast.walk(annotation):
        name: str | None = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name in _BARE_GENERICS and id(node) not in subscripted:
            bare.append(name)
    return bare
