"""R2 — switch-parity registry.

``FederatedConfig`` validates its engine switches against literal tuples::

    if self.engine not in ("loop", "vectorized"): ...
    if self.sampler not in ("permutation", "batched"): ...

Each of those literal realizations is a *contract surface*: it needs a
dispatch branch somewhere in the library, an equivalence-suite
parametrization proving it against its oracle, and a golden seed-history
case pinning its realization.  Historically all three were maintained by
convention; this rule extracts the realizations statically and fails lint
when any leg is missing — so adding ``engine = "sharded"`` without tests is
a red build, not a latent gap.

Checked per realization of every switch field:

1. **dispatch** — the literal is compared against a matching name
   (``config.engine``, ``self._sampler``, an ``engine=`` parameter, ...)
   somewhere under ``src/`` outside the config modules themselves,
2. **equivalence** — the literal appears in the field's registered
   equivalence suite(s) (:data:`EQUIVALENCE_SUITES`; a new switch field
   must register its suite here, which is itself enforced),
3. **golden** — the golden case grid (``tests/golden/golden_cases.py``)
   explicitly assigns the literal to the field, so every realization has a
   committed seed-history fixture.  Defaults are not exempt: the grid
   states every switch value explicitly, which is what makes deleting a
   case a lint failure.

The switch fields and their realizations are read from the declarative
switch registry (``src/repro/federated/switches.py``) when the tree has one
— every ``SwitchSpec(kind="choice", choices=(...))`` entry is a contract
surface, and violations are anchored at its ``SwitchSpec`` call.  Trees
without a registry (the lint fixtures, historical checkouts) fall back to
extracting the literal membership checks from ``FederatedConfig.validate``
as before.

Integer-valued switches (``workers``) have no literal realization tuple to
extract, so their proof obligations are registered
explicitly in :data:`INT_SWITCHES`: each listed value needs the same three
legs, with dispatch evidence being any comparison of the field against an
int literal (an int switch dispatches on a threshold like
``config.workers > 1``, not on tuple membership), equivalence coverage
being the int's appearance in the registered suite, and golden coverage an
explicit ``workers=<value>`` assignment in the case grid.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis import project as model
from repro.analysis.core import Project, Rule, SourceFile, Violation, register

__all__ = ["SwitchParityRule", "EQUIVALENCE_SUITES", "INT_SWITCHES"]

#: Switch field -> the test modules whose parametrizations prove its
#: realizations against the loop oracle.  A switch field missing from this
#: registry is itself a violation: declaring where a new switch is proven
#: equivalent is part of adding the switch.
EQUIVALENCE_SUITES: dict[str, tuple[str, ...]] = {
    "engine": ("tests/test_federated_engine_equivalence.py",),
    "sampler": (
        "tests/test_federated_engine_equivalence.py",
        "tests/test_negative_sampling_stats.py",
    ),
    "eval_engine": ("tests/test_eval_engine_equivalence.py",),
    "eval_sampler": ("tests/test_eval_engine_equivalence.py",),
    "eval_path": ("tests/test_eval_path_equivalence.py",),
    "workers": ("tests/test_sharded_engine_equivalence.py",),
    "straggler_policy": ("tests/test_federation_dynamics.py",),
    "degradation": ("tests/test_sharded_engine_faults.py",),
}

#: Integer switch field -> the values whose realizations must be dispatched,
#: proven equivalent and pinned by a golden case.  ``workers``: 1 is the
#: in-process engine, 2 the representative sharded count (the equivalence
#: suite additionally sweeps larger and degenerate shard counts).
INT_SWITCHES: dict[str, tuple[int, ...]] = {
    "workers": (1, 2),
}


@register
class SwitchParityRule(Rule):
    id = "R2"
    name = "switch-parity"
    summary = (
        "every switch realization has a dispatch branch, an equivalence-suite "
        "parametrization and a golden seed-history case"
    )

    def check(self, project: Project) -> Iterator[Violation]:
        config = project.source(model.FEDERATED_CONFIG)
        if config is None:
            return
        # Prefer the declarative registry; fall back to the legacy
        # validate-membership extraction for trees without one.
        anchor = config
        fields = model.extract_switch_fields(config)
        registry = project.source(model.SWITCH_REGISTRY_MODULE)
        if registry is not None:
            declared = model.registry_switches(registry)
            if declared:
                anchor = registry
                fields = [
                    model.SwitchField(
                        name=switch.name,
                        realizations=switch.choices,
                        default=switch.default
                        if isinstance(switch.default, str)
                        else None,
                        line=switch.line,
                    )
                    for switch in declared
                    if switch.kind == "choice" and switch.choices
                ]
        if not fields:
            return

        library = [
            source
            for source in project.library_files()
            if source.rel not in model.CONFIG_MODULES
        ]
        golden = project.source(model.GOLDEN_CASES)

        yield from self._check_int_switches(project, config, library, golden)

        for switch in fields:
            dispatched = model.comparison_realizations(library, switch.name)
            for realization in switch.realizations:
                if realization not in dispatched:
                    yield Violation(
                        rule=self.id,
                        path=anchor.rel,
                        line=switch.line,
                        message=(
                            f"switch {switch.name}={realization!r} has no dispatch "
                            "branch: no comparison against the literal anywhere "
                            "under src/ outside the config modules"
                        ),
                    )

            suites = EQUIVALENCE_SUITES.get(switch.name)
            if suites is None:
                yield Violation(
                    rule=self.id,
                    path=anchor.rel,
                    line=switch.line,
                    message=(
                        f"switch field {switch.name!r} has no entry in "
                        "repro.analysis.rules.parity.EQUIVALENCE_SUITES; register "
                        "the equivalence suite that proves its realizations"
                    ),
                )
            else:
                covered: set[str] = set()
                found_any = False
                for rel in suites:
                    suite = project.source(rel)
                    if suite is None:
                        continue
                    found_any = True
                    covered |= model.all_string_constants(suite)
                if not found_any:
                    yield Violation(
                        rule=self.id,
                        path=anchor.rel,
                        line=switch.line,
                        message=(
                            f"none of the registered equivalence suites for "
                            f"{switch.name!r} exist: {', '.join(suites)}"
                        ),
                    )
                else:
                    for realization in switch.realizations:
                        if realization not in covered:
                            yield Violation(
                                rule=self.id,
                                path=anchor.rel,
                                line=switch.line,
                                message=(
                                    f"switch {switch.name}={realization!r} is not "
                                    "parametrized in its equivalence suite(s) "
                                    f"({', '.join(suites)})"
                                ),
                            )

            if golden is None:
                yield Violation(
                    rule=self.id,
                    path=anchor.rel,
                    line=switch.line,
                    message=(
                        f"cannot verify golden coverage of {switch.name!r}: "
                        f"{model.GOLDEN_CASES} not found"
                    ),
                )
            else:
                pinned = model.golden_field_values(golden, switch.name)
                for realization in switch.realizations:
                    if realization not in pinned:
                        yield Violation(
                            rule=self.id,
                            path=anchor.rel,
                            line=switch.line,
                            message=(
                                f"switch {switch.name}={realization!r} has no "
                                f"golden seed-history case in {model.GOLDEN_CASES}; "
                                "add a case pinning this realization"
                            ),
                        )

    def _check_int_switches(
        self,
        project: Project,
        config: SourceFile,
        library: list[SourceFile],
        golden: SourceFile | None,
    ) -> Iterator[Violation]:
        declared = model.class_field_names(config, "FederatedConfig")
        for name, required in INT_SWITCHES.items():
            if name not in declared:
                yield Violation(
                    rule=self.id,
                    path=config.rel,
                    line=1,
                    message=(
                        f"INT_SWITCHES registers {name!r} but FederatedConfig "
                        "declares no such field; remove the stale registry entry"
                    ),
                )
                continue

            if not model.int_comparison_constants(library, name):
                yield Violation(
                    rule=self.id,
                    path=config.rel,
                    line=1,
                    message=(
                        f"int switch {name!r} has no dispatch branch: no "
                        "comparison against an int literal anywhere under src/ "
                        "outside the config modules"
                    ),
                )

            suites = EQUIVALENCE_SUITES.get(name)
            if suites is None:
                yield Violation(
                    rule=self.id,
                    path=config.rel,
                    line=1,
                    message=(
                        f"int switch {name!r} has no entry in "
                        "repro.analysis.rules.parity.EQUIVALENCE_SUITES; register "
                        "the equivalence suite that proves its realizations"
                    ),
                )
            else:
                covered: set[int] = set()
                found_any = False
                for rel in suites:
                    suite = project.source(rel)
                    if suite is None:
                        continue
                    found_any = True
                    covered |= model.all_int_constants(suite)
                if not found_any:
                    yield Violation(
                        rule=self.id,
                        path=config.rel,
                        line=1,
                        message=(
                            f"none of the registered equivalence suites for "
                            f"{name!r} exist: {', '.join(suites)}"
                        ),
                    )
                else:
                    for value in required:
                        if value not in covered:
                            yield Violation(
                                rule=self.id,
                                path=config.rel,
                                line=1,
                                message=(
                                    f"int switch {name}={value} is not "
                                    "parametrized in its equivalence suite(s) "
                                    f"({', '.join(suites)})"
                                ),
                            )

            if golden is None:
                yield Violation(
                    rule=self.id,
                    path=config.rel,
                    line=1,
                    message=(
                        f"cannot verify golden coverage of {name!r}: "
                        f"{model.GOLDEN_CASES} not found"
                    ),
                )
            else:
                pinned = model.golden_int_field_values(golden, name)
                for value in required:
                    if value not in pinned:
                        yield Violation(
                            rule=self.id,
                            path=config.rel,
                            line=1,
                            message=(
                                f"int switch {name}={value} has no golden "
                                f"seed-history case in {model.GOLDEN_CASES}; "
                                "add a case pinning this realization"
                            ),
                        )
