"""R3 — densification guard.

The :class:`~repro.data.store.InteractionStore` and the sparse round-update
containers (:class:`~repro.federated.updates.SparseRoundUpdates`,
:class:`~repro.federated.updates.FactoredRoundUpdates`) exist so the hot
paths never materialize ``(num_users, num_items)`` or ``(nnz, k)`` dense
arrays.  A stray ``.toarray()`` or an ``np.stack`` over per-client mask rows
quietly reintroduces the quadratic allocations PRs 1–4 removed — the perf
gates only catch it when the regression is large enough to trip a ratio.

This rule flags, in library code outside the explicit allowlist:

* ``.toarray()`` / ``.todense()`` calls (scipy-style densification),
* ``.to_dense(...)`` calls (the round-update debugging escape hatch),
* ``np.stack`` / ``np.vstack`` / ``np.column_stack`` whose operand mentions
  a mask (``positive_mask``, ``mask_rows``, ...) — stacked mask copies are
  exactly what :meth:`InteractionStore.mask_rows` replaced.

The allowlist contains the modules whose *job* is materialization: the
store itself and the update containers' densify points.  Anything else
needs a per-line suppression with a reason.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileRule, Project, SourceFile, Violation, register

__all__ = ["DensificationGuardRule"]

#: Modules allowed to materialize dense structures.
ALLOWED_FILES = (
    "src/repro/data/store.py",
    "src/repro/federated/updates.py",
)

_DENSIFY_METHODS = frozenset({"toarray", "todense", "to_dense"})
_STACK_FUNCTIONS = frozenset({"stack", "vstack", "column_stack"})


@register
class DensificationGuardRule(FileRule):
    id = "R3"
    name = "densification-guard"
    summary = (
        "no dense materialization of store-backed masks or sparse round "
        "updates outside the store/updates modules"
    )

    def applies_to(self, source: SourceFile) -> bool:
        return not source.is_test_context and source.rel not in ALLOWED_FILES

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Violation]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _DENSIFY_METHODS:
                yield Violation(
                    rule=self.id,
                    path=source.rel,
                    line=node.lineno,
                    message=(
                        f".{func.attr}() densifies a sparse structure; keep the "
                        "CSR/factored form or move the materialization into "
                        f"{' / '.join(ALLOWED_FILES)}"
                    ),
                )
                continue
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _STACK_FUNCTIONS
                and node.args
                and _mentions_mask(node.args[0])
            ):
                yield Violation(
                    rule=self.id,
                    path=source.rel,
                    line=node.lineno,
                    message=(
                        f"np.{func.attr} over mask rows copies what "
                        "InteractionStore already caches; gather views via "
                        "store.mask_rows / store.mask_block instead"
                    ),
                )


def _mentions_mask(node: ast.expr) -> bool:
    """Whether the stacked operand references a mask by name."""
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and "mask" in child.attr:
            return True
        if isinstance(child, ast.Name) and "mask" in child.id:
            return True
    return False
