"""Core machinery of ``repro-lint``: files, rules, registry, runner.

The analyzer is deliberately dependency-free (stdlib ``ast`` + ``tokenize``)
so it can run in every environment the library runs in — CI, pre-commit, a
bare checkout — without installing anything.

Two kinds of rules exist:

* :class:`FileRule` — visits one parsed source file at a time (RNG
  discipline, densification guard, export consistency, ...).
* :class:`Rule` subclasses overriding :meth:`Rule.check` directly —
  project-level contracts that cross-reference several files (the
  switch-parity registry, the config–CLI–docs sync).

Rules register themselves in :data:`RULES` through the :func:`register`
decorator; :func:`run_analysis` runs them, applies suppression comments and
reports suppression hygiene (unexplained, unknown-rule and unused
suppressions) as violations of the pseudo-rule ``SUP``.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar, Iterable, Iterator, Sequence

from repro.analysis.suppressions import FileSuppressions, parse_suppressions

__all__ = [
    "RULES",
    "FileRule",
    "Project",
    "Report",
    "Rule",
    "SourceFile",
    "Violation",
    "register",
    "run_analysis",
]

#: Violations of these pseudo-rules cannot be suppressed: a file that does
#: not parse cannot be reasoned about, and suppression hygiene guarding
#: itself would be circular.
UNSUPPRESSIBLE = ("SYNTAX", "SUP")

#: Directory names never scanned for sources.
_SKIPPED_DIRS = {"__pycache__", ".git", ".venv", "build", "dist", "node_modules"}


@dataclass(frozen=True)
class Violation:
    """One finding: a rule id, a location and a human-readable message."""

    rule: str
    path: str
    line: int
    message: str

    def sort_key(self) -> tuple[str, int, str]:
        return (self.path, self.line, self.rule)

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass
class SourceFile:
    """One source file: text, parse tree (if it parses) and suppressions."""

    path: Path
    rel: str
    text: str
    tree: ast.Module | None
    syntax_error: str | None
    suppressions: FileSuppressions

    @classmethod
    def load(cls, path: Path, rel: str) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        tree: ast.Module | None = None
        error: str | None = None
        try:
            tree = ast.parse(text, filename=rel)
        except SyntaxError as exc:
            error = f"{exc.msg} (line {exc.lineno})"
        return cls(
            path=path,
            rel=rel,
            text=text,
            tree=tree,
            syntax_error=error,
            suppressions=parse_suppressions(text),
        )

    @property
    def is_test_context(self) -> bool:
        """Whether the file lives in a test/benchmark/example tree.

        Library contracts (RNG routing, densification, typed signatures)
        apply only outside these trees; the test trees get the looser
        variants (e.g. seeded ``default_rng`` construction is fine there).
        """
        parts = Path(self.rel).parts
        return any(part in ("tests", "benchmarks", "examples") for part in parts)


@dataclass
class Project:
    """The tree under analysis: scanned files plus on-demand anchors.

    ``files`` is what the command line asked to scan.  Project-level rules
    additionally read *anchor* files (the switch config, the golden case
    grid, the CLI module, the README) through :meth:`source`, which resolves
    them against the project root regardless of the scan arguments — the
    contracts hold for the project, not for whatever subset was scanned.
    """

    root: Path
    files: list[SourceFile] = field(default_factory=list)
    _cache: dict[str, SourceFile | None] = field(default_factory=dict)

    @classmethod
    def load(cls, root: Path, paths: Sequence[str]) -> "Project":
        root = root.resolve()
        project = cls(root=root)
        seen: set[str] = set()
        for raw in paths:
            target = (root / raw).resolve() if not Path(raw).is_absolute() else Path(raw)
            for path in _iter_python_files(target):
                rel = _relative(path, root)
                if rel in seen:
                    continue
                seen.add(rel)
                source = SourceFile.load(path, rel)
                project.files.append(source)
                project._cache[rel] = source
        project.files.sort(key=lambda source: source.rel)
        return project

    def source(self, rel: str) -> SourceFile | None:
        """The file at project-relative ``rel``, or ``None`` if absent."""
        if rel not in self._cache:
            path = self.root / rel
            self._cache[rel] = (
                SourceFile.load(path, rel) if path.is_file() else None
            )
        return self._cache[rel]

    def library_files(self) -> list[SourceFile]:
        """Every library source under ``src/``, independent of scan args."""
        scanned = {source.rel: source for source in self.files}
        out: list[SourceFile] = []
        for path in _iter_python_files(self.root / "src"):
            rel = _relative(path, self.root)
            if rel in scanned:
                out.append(scanned[rel])
            else:
                cached = self.source(rel)
                if cached is not None:
                    out.append(cached)
        return out


def _iter_python_files(target: Path) -> Iterator[Path]:
    if target.is_file():
        if target.suffix == ".py":
            yield target
        return
    if not target.is_dir():
        return
    for path in sorted(target.rglob("*.py")):
        parts = path.parts
        if any(part in _SKIPPED_DIRS or part.startswith(".") for part in parts):
            continue
        yield path


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.resolve().as_posix()


class Rule(ABC):
    """A named contract check over the whole project."""

    id: ClassVar[str]
    name: ClassVar[str]
    summary: ClassVar[str]

    @abstractmethod
    def check(self, project: Project) -> Iterator[Violation]:
        """Yield every violation of this rule in ``project``."""


class FileRule(Rule):
    """A rule applied file by file to the scanned sources."""

    def check(self, project: Project) -> Iterator[Violation]:
        for source in project.files:
            if source.tree is None or not self.applies_to(source):
                continue
            yield from self.check_file(source, project)

    def applies_to(self, source: SourceFile) -> bool:
        return True

    @abstractmethod
    def check_file(self, source: SourceFile, project: Project) -> Iterator[Violation]:
        """Yield every violation of this rule in one file."""


RULES: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    RULES[cls.id] = cls
    return cls


@dataclass
class Report:
    """Outcome of one analysis run."""

    violations: list[Violation]
    suppressed: list[Violation]
    files_checked: int

    @property
    def exit_code(self) -> int:
        return 1 if self.violations else 0


def run_analysis(
    root: Path,
    paths: Sequence[str] = ("src", "tests"),
    select: Iterable[str] | None = None,
) -> Report:
    """Run every (selected) rule over ``paths`` and apply suppressions.

    Suppression hygiene is enforced here rather than in a rule so it sees
    the complete picture: a suppression must carry a reason, must name a
    known rule, and — when all rules ran — must actually suppress something.
    """
    project = Project.load(root, paths)
    selected = set(select) if select is not None else None
    unknown_selected = (selected or set()) - set(RULES)
    if unknown_selected:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown_selected))}")

    raw: list[Violation] = []
    for source in project.files:
        if source.syntax_error is not None:
            raw.append(
                Violation(
                    rule="SYNTAX",
                    path=source.rel,
                    line=1,
                    message=f"file does not parse: {source.syntax_error}",
                )
            )
    for rule_id, rule_cls in sorted(RULES.items()):
        if selected is not None and rule_id not in selected:
            continue
        raw.extend(rule_cls().check(project))

    violations: list[Violation] = []
    suppressed: list[Violation] = []
    used: set[tuple[str, int]] = set()
    suppression_files = {source.rel: source for source in project.files}
    for violation in raw:
        source = suppression_files.get(violation.path)
        match = (
            None
            if source is None or violation.rule in UNSUPPRESSIBLE
            else source.suppressions.match(violation.rule, violation.line)
        )
        if match is None:
            violations.append(violation)
        else:
            suppressed.append(violation)
            used.add((violation.path, match.line))

    for source in project.files:
        for suppression in source.suppressions.suppressions:
            if not suppression.reason:
                violations.append(
                    Violation(
                        rule="SUP",
                        path=source.rel,
                        line=suppression.line,
                        message=(
                            "unexplained suppression: add a reason, e.g. "
                            "# repro-lint: disable="
                            f"{','.join(suppression.rules)} — <why this is safe>"
                        ),
                    )
                )
            for rule_id in suppression.rules:
                if rule_id not in RULES:
                    violations.append(
                        Violation(
                            rule="SUP",
                            path=source.rel,
                            line=suppression.line,
                            message=f"suppression names unknown rule {rule_id!r}",
                        )
                    )
            if (
                selected is None
                and suppression.reason
                and all(rule_id in RULES for rule_id in suppression.rules)
                and (source.rel, suppression.line) not in used
            ):
                violations.append(
                    Violation(
                        rule="SUP",
                        path=source.rel,
                        line=suppression.line,
                        message=(
                            "unused suppression for "
                            f"{','.join(suppression.rules)}: nothing is reported "
                            "here — delete the comment"
                        ),
                    )
                )

    violations.sort(key=Violation.sort_key)
    suppressed.sort(key=Violation.sort_key)
    return Report(
        violations=violations,
        suppressed=suppressed,
        files_checked=len(project.files),
    )
