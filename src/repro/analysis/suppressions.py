"""Suppression comments for ``repro-lint``.

A violation can be silenced in two scopes::

    x = np.stack(masks)  # repro-lint: disable=R3 — loop-engine fallback, no store available

    # repro-lint: disable-file=R4 — this suite pins a tolerance contract, not bit-equality

``disable`` applies to violations reported on the same physical line; when
the comment stands on a line of its own it instead covers the next source
line (continuation comment lines and blanks in between are skipped, so a
multi-line justification block works).  ``disable-file`` covers the whole
file.  Several rules may be listed separated by commas.  The reason after the ``—`` separator (``--`` and ``:`` are also
accepted) is **mandatory**: the suppression hygiene rule reports any
suppression without one, so every exception to a contract is documented at
the site where it is made.

Comments are extracted with :mod:`tokenize`, so the marker text inside a
string literal is never mistaken for a suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Suppression", "FileSuppressions", "parse_suppressions"]

#: ``disable=R1,R3`` or ``disable-file=R2`` followed by an optional
#: ``— reason`` tail.  The rule list deliberately excludes the separator
#: characters so the reason never bleeds into the rule ids.
_MARKER = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable-file|disable)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
    r"(?:\s*(?:—|--|:)\s*(?P<reason>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One ``repro-lint: disable`` comment."""

    line: int
    kind: str  # "line" | "file"
    rules: tuple[str, ...]
    reason: str | None
    #: The source line the suppression attaches to — the comment's own line
    #: for trailing comments, the next code line for standalone ones.
    target: int = 0

    def __post_init__(self) -> None:
        if self.target == 0:
            object.__setattr__(self, "target", self.line)

    def covers(self, rule: str, line: int) -> bool:
        """Whether this suppression silences ``rule`` reported at ``line``."""
        if rule not in self.rules:
            return False
        return self.kind == "file" or line in (self.line, self.target)


@dataclass
class FileSuppressions:
    """All suppression comments of one source file."""

    suppressions: list[Suppression] = field(default_factory=list)

    def match(self, rule: str, line: int) -> Suppression | None:
        """The first suppression covering ``rule`` at ``line``, if any."""
        for suppression in self.suppressions:
            if suppression.covers(rule, line):
                return suppression
        return None


def parse_suppressions(text: str) -> FileSuppressions:
    """Extract every suppression comment from ``text``.

    Tokenization errors (the file may not even be Python) degrade to a
    line-by-line scan so suppressions still work in partially broken files.
    """
    lines = text.splitlines()
    found: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        for lineno, line in enumerate(lines, start=1):
            if "#" in line:
                suppression = _parse_comment(line[line.index("#"):], lineno)
                if suppression is not None:
                    found.append(_anchor(suppression, lines))
        return FileSuppressions(found)
    for token in tokens:
        if token.type == tokenize.COMMENT:
            suppression = _parse_comment(token.string, token.start[0])
            if suppression is not None:
                found.append(_anchor(suppression, lines))
    return FileSuppressions(found)


def _anchor(suppression: Suppression, lines: list[str]) -> Suppression:
    """Attach a standalone ``disable`` comment to the next source line.

    Trailing comments keep their own line.  A standalone comment (nothing but
    whitespace before the ``#``) covers the first following line that is not
    blank and not itself a comment, so a multi-line reason block between the
    marker and the code it excuses still works.
    """
    if suppression.kind != "line":
        return suppression
    own = lines[suppression.line - 1] if suppression.line <= len(lines) else ""
    before_hash = own.split("#", 1)[0]
    if before_hash.strip():
        return suppression  # trailing comment — same-line scope
    target = suppression.line
    for lineno in range(suppression.line + 1, len(lines) + 1):
        stripped = lines[lineno - 1].strip()
        if not stripped or stripped.startswith("#"):
            continue
        target = lineno
        break
    return Suppression(
        line=suppression.line,
        kind=suppression.kind,
        rules=suppression.rules,
        reason=suppression.reason,
        target=target,
    )


def _parse_comment(comment: str, lineno: int) -> Suppression | None:
    match = _MARKER.search(comment)
    if match is None:
        return None
    rules = tuple(part.strip() for part in match.group("rules").split(","))
    kind = "file" if match.group("kind") == "disable-file" else "line"
    return Suppression(line=lineno, kind=kind, rules=rules, reason=match.group("reason"))
