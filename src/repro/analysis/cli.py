"""Command-line front end of ``repro-lint``.

Usage::

    python -m repro.analysis [paths ...]          # default: src tests
    python -m repro.analysis --format json src
    python -m repro.analysis --select R1,R3 src
    python -m repro.analysis --list-rules

Exit codes: ``0`` clean, ``1`` violations found, ``2`` usage error — the
semantics CI and pre-commit expect.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.core import RULES, Report, run_analysis

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Project-specific static analysis: RNG discipline, switch-parity, "
            "densification, bit-exactness, config/CLI/docs sync, exports, typing."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to scan (default: src tests)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="project root the cross-file contracts are resolved against",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule_cls in sorted(RULES.items()):
            print(f"{rule_id}  {rule_cls.name}: {rule_cls.summary}")
        return 0

    select = None
    if args.select is not None:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
    try:
        report = run_analysis(Path(args.root), args.paths, select=select)
    except ValueError as error:
        parser.error(str(error))

    if args.format == "json":
        print(json.dumps(_as_json(report), indent=2))
    else:
        for violation in report.violations:
            print(violation.format())
        summary = (
            f"{len(report.violations)} violation(s), "
            f"{len(report.suppressed)} suppressed, "
            f"{report.files_checked} file(s) checked"
        )
        if report.violations:
            print(summary, file=sys.stderr)
        else:
            print(f"repro-lint: clean — {summary}")
    return report.exit_code


def _as_json(report: Report) -> dict[str, object]:
    return {
        "violations": [
            {
                "rule": violation.rule,
                "path": violation.path,
                "line": violation.line,
                "message": violation.message,
            }
            for violation in report.violations
        ],
        "suppressed": [
            {
                "rule": violation.rule,
                "path": violation.path,
                "line": violation.line,
                "message": violation.message,
            }
            for violation in report.suppressed
        ],
        "files_checked": report.files_checked,
        "exit_code": report.exit_code,
    }


if __name__ == "__main__":
    sys.exit(main())
