"""``repro-lint`` — project-specific static analysis for the reproduction.

Five PRs of engine work rest on contracts that ordinary linters cannot see:
every stochastic call site must route through :mod:`repro.rng`, every
``engine`` / ``sampler`` / ``eval_engine`` / ``eval_sampler`` realization
must have a dispatch branch *and* an equivalence-suite parametrization *and*
a golden seed-history case, store-backed masks must never be densified
outside the store itself, and the equivalence/golden suites must assert
exact equality.  This package machine-checks those contracts with
stdlib-``ast`` visitors so that breaking one is a lint failure, not a
mystery golden-fixture diff three PRs later.

Run it as ``python -m repro.analysis src tests`` (or the installed
``repro-lint`` script).  Rules are registered in :mod:`repro.analysis.rules`;
violations can be suppressed per line or per file with
``# repro-lint: disable=RULE — reason`` comments (the reason is mandatory —
an unexplained suppression is itself a violation).
"""

from __future__ import annotations

from repro.analysis.core import (
    RULES,
    FileRule,
    Project,
    Report,
    Rule,
    SourceFile,
    Violation,
    register,
    run_analysis,
)
from repro.analysis.suppressions import FileSuppressions, Suppression

# Importing the rules package registers every built-in rule.
import repro.analysis.rules  # noqa: F401  (imported for its registration side effect)

__all__ = [
    "RULES",
    "FileRule",
    "FileSuppressions",
    "Project",
    "Report",
    "Rule",
    "SourceFile",
    "Suppression",
    "Violation",
    "register",
    "run_analysis",
]
