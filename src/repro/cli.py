"""Command-line interface.

Three sub-commands are provided:

``run``
    Run a single experiment (dataset + attack + knobs) and print the final
    exposure and accuracy metrics.
``table``
    Regenerate one of the paper's tables (2-9, or ``defense`` for the
    robust-aggregation extension) and print it.
``figure``
    Regenerate the Figure 3 series and print a text summary.

Examples
--------
::

    fedrecattack run --dataset ml-100k --attack fedrecattack --rho 0.05 --scale 0.1
    fedrecattack run --dataset steam-200k --sampler batched --fuse-rounds 4
    fedrecattack table 7 --profile bench
    fedrecattack figure 3 --dataset steam-200k
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.experiments.config import BENCH_PROFILE, PAPER_PROFILE, ExperimentConfig, ExperimentProfile
from repro.experiments.figures import figure3_side_effects
from repro.experiments.registry import available_attacks
from repro.experiments.runner import run_experiment
from repro.experiments.tables import (
    defense_table,
    table2_dataset_sizes,
    table3_xi_sweep,
    table4_rho_sweep,
    table5_kappa_sweep,
    table6_data_poisoning,
    table7_effectiveness,
    table8_model_poisoning,
    table9_ablation,
)

__all__ = ["main", "build_parser"]

_TABLES: dict[str, Callable[[ExperimentProfile], object]] = {
    "2": table2_dataset_sizes,
    "3": table3_xi_sweep,
    "4": table4_rho_sweep,
    "5": table5_kappa_sweep,
    "6": table6_data_poisoning,
    "7": table7_effectiveness,
    "8": table8_model_poisoning,
    "9": table9_ablation,
    "defense": defense_table,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser.

    Exposed separately from :func:`main` so tests (and sphinx-argparse-style
    doc tooling) can introspect the full command surface without running
    anything.
    """
    parser = argparse.ArgumentParser(
        prog="fedrecattack",
        description="Reproduction of FedRecAttack (ICDE 2022): run attacks, tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run a single experiment")
    run_parser.add_argument("--dataset", default="ml-100k", help="ml-100k, ml-1m or steam-200k")
    run_parser.add_argument("--attack", default="fedrecattack", choices=available_attacks())
    run_parser.add_argument("--scale", type=float, default=0.1, help="dataset down-scaling factor")
    run_parser.add_argument("--xi", type=float, default=0.01, help="public interaction proportion")
    run_parser.add_argument("--rho", type=float, default=0.05, help="malicious user proportion")
    run_parser.add_argument("--kappa", type=int, default=60, help="max non-zero gradient rows")
    run_parser.add_argument("--epochs", type=int, default=30, help="training epochs")
    run_parser.add_argument("--factors", type=int, default=16, help="embedding dimension k")
    run_parser.add_argument("--clients-per-round", type=int, default=64)
    run_parser.add_argument("--targets", type=int, default=1, help="number of target items")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--data-dir", default=None, help="directory with the real dataset files")
    # Engine knobs.  Deliberately not argparse choices: unknown values are
    # rejected by ExperimentConfig.validate() with a ConfigurationError, the
    # same validation every programmatic entry point gets.
    run_parser.add_argument(
        "--engine",
        default="vectorized",
        help="round engine: 'vectorized' (default) or 'loop'",
    )
    run_parser.add_argument(
        "--sampler",
        default="permutation",
        help="negative-sampling engine: 'permutation' (default) or 'batched'",
    )
    run_parser.add_argument(
        "--eval-engine",
        default="vectorized",
        help="evaluation engine: 'vectorized' (default) or 'loop'",
    )
    run_parser.add_argument(
        "--eval-sampler",
        default="per-user",
        help=(
            "sampled-protocol negative stream: 'per-user' (default, "
            "historical seed histories) or 'batched' (stacked per-block draw)"
        ),
    )
    run_parser.add_argument(
        "--fuse-rounds",
        type=int,
        default=1,
        help="cross-round fusion window (>1 requires the vectorized engine)",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes sharding each round (bit-identical to 1)",
    )
    run_parser.add_argument(
        "--worker-timeout",
        type=float,
        default=None,
        help="seconds to wait for a sharded round before aborting (default: forever)",
    )

    table_parser = subparsers.add_parser("table", help="regenerate one of the paper's tables")
    table_parser.add_argument("table", choices=sorted(_TABLES), help="table number or 'defense'")
    table_parser.add_argument("--profile", choices=("bench", "paper"), default="bench")

    figure_parser = subparsers.add_parser("figure", help="regenerate Figure 3 series")
    figure_parser.add_argument("figure", choices=("3",), help="figure number")
    figure_parser.add_argument("--dataset", default="ml-100k")
    figure_parser.add_argument("--profile", choices=("bench", "paper"), default="bench")

    return parser


def _profile_from_name(name: str) -> ExperimentProfile:
    return PAPER_PROFILE if name == "paper" else BENCH_PROFILE


def _command_run(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        dataset=args.dataset,
        scale=args.scale,
        data_dir=args.data_dir,
        attack=args.attack,
        xi=args.xi,
        rho=0.0 if args.attack == "none" else args.rho,
        kappa=args.kappa,
        num_target_items=args.targets,
        num_factors=args.factors,
        num_epochs=args.epochs,
        clients_per_round=args.clients_per_round,
        engine=args.engine,
        sampler=args.sampler,
        eval_engine=args.eval_engine,
        eval_sampler=args.eval_sampler,
        fuse_rounds=args.fuse_rounds,
        workers=args.workers,
        worker_timeout=args.worker_timeout,
        seed=args.seed,
    )
    result = run_experiment(config)
    print(f"dataset={args.dataset} attack={args.attack} rho={config.rho} xi={config.xi}")
    print(f"  malicious clients: {result.num_malicious}")
    print(f"  target items:      {result.target_items.tolist()}")
    if result.exposure is not None:
        print(f"  ER@5:    {result.er_at_5:.4f}")
        print(f"  ER@10:   {result.er_at_10:.4f}")
        print(f"  NDCG@10: {result.target_ndcg_at_10:.4f}")
    if result.accuracy is not None:
        print(f"  HR@10:   {result.hr_at_10:.4f}")
    return 0


def _command_table(args: argparse.Namespace) -> int:
    profile = _profile_from_name(args.profile)
    table = _TABLES[args.table](profile)
    print(table)
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    profile = _profile_from_name(args.profile)
    figure = figure3_side_effects(profile, dataset=args.dataset)
    print(figure)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (``python -m repro.cli`` or the ``fedrecattack`` script).

    Parameters
    ----------
    argv:
        Argument list without the program name; ``None`` uses ``sys.argv``.

    Returns
    -------
    int
        Process exit code (0 on success), suitable for ``sys.exit``.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "table":
        return _command_table(args)
    if args.command == "figure":
        return _command_figure(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
