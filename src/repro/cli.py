"""Command-line interface.

Four sub-commands are provided:

``run``
    Run a single experiment (dataset + attack + knobs) and print the final
    exposure and accuracy metrics.
``serve``
    Run an experiment, freeze the trained factors into an immutable
    :class:`~repro.serving.snapshot.FactorSnapshot` and serve top-K
    recommendations over the stdlib JSON/HTTP front end
    (``--max-requests 0`` binds, reports the address and exits — the smoke
    mode CI uses).
``table``
    Regenerate one of the paper's tables (2-9, or ``defense`` for the
    robust-aggregation extension) and print it.
``figure``
    Regenerate the Figure 3 series and print a text summary.

The engine-switch flags (``--engine``, ``--sampler``, ``--workers``, ...) are
generated from the declarative registry
(:data:`~repro.federated.switches.SWITCH_REGISTRY`) — one spec there yields
the config fields, the validation and the CLI flag at once.

Examples
--------
::

    fedrecattack run --dataset ml-100k --attack fedrecattack --rho 0.05 --scale 0.1
    fedrecattack run --dataset steam-200k --sampler batched --fuse-rounds 4
    fedrecattack serve --dataset ml-100k --scale 0.1 --epochs 5 --port 8080
    fedrecattack table 7 --profile bench
    fedrecattack figure 3 --dataset steam-200k
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Callable, Sequence

from repro.experiments.config import BENCH_PROFILE, PAPER_PROFILE, ExperimentConfig, ExperimentProfile
from repro.experiments.figures import figure3_side_effects
from repro.experiments.registry import available_attacks
from repro.experiments.runner import run_experiment
from repro.federated.switches import SWITCH_REGISTRY
from repro.experiments.tables import (
    defense_table,
    table2_dataset_sizes,
    table3_xi_sweep,
    table4_rho_sweep,
    table5_kappa_sweep,
    table6_data_poisoning,
    table7_effectiveness,
    table8_model_poisoning,
    table9_ablation,
)

__all__ = ["main", "build_parser", "add_switch_arguments", "switch_overrides"]

_TABLES: dict[str, Callable[[ExperimentProfile], object]] = {
    "2": table2_dataset_sizes,
    "3": table3_xi_sweep,
    "4": table4_rho_sweep,
    "5": table5_kappa_sweep,
    "6": table6_data_poisoning,
    "7": table7_effectiveness,
    "8": table8_model_poisoning,
    "9": table9_ablation,
    "defense": defense_table,
}


def add_switch_arguments(parser: argparse.ArgumentParser) -> None:
    """Register one ``--flag`` per registry switch on ``parser``.

    Flags, types, defaults and help text all come from
    :data:`~repro.federated.switches.SWITCH_REGISTRY` — adding a switch to
    the registry is the whole CLI story.  Choice switches deliberately do
    *not* use argparse ``choices``: unknown values are rejected by
    ``ExperimentConfig.validate()`` with a :class:`ConfigurationError`, the
    same validation every programmatic entry point gets.
    """
    for spec in SWITCH_REGISTRY:
        parser.add_argument(
            spec.cli_flag,
            type=spec.cli_type,
            default=spec.default,
            help=spec.help,
        )


def switch_overrides(args: argparse.Namespace) -> dict[str, Any]:
    """The parsed switch values, keyed by registry field name."""
    return {spec.name: getattr(args, spec.name) for spec in SWITCH_REGISTRY}


def _add_experiment_arguments(parser: argparse.ArgumentParser) -> None:
    """The experiment-description flags shared by ``run`` and ``serve``."""
    parser.add_argument("--dataset", default="ml-100k", help="ml-100k, ml-1m or steam-200k")
    parser.add_argument("--attack", default="fedrecattack", choices=available_attacks())
    parser.add_argument("--scale", type=float, default=0.1, help="dataset down-scaling factor")
    parser.add_argument("--xi", type=float, default=0.01, help="public interaction proportion")
    parser.add_argument("--rho", type=float, default=0.05, help="malicious user proportion")
    parser.add_argument("--kappa", type=int, default=60, help="max non-zero gradient rows")
    parser.add_argument("--epochs", type=int, default=30, help="training epochs")
    parser.add_argument("--factors", type=int, default=16, help="embedding dimension k")
    parser.add_argument("--clients-per-round", type=int, default=64)
    parser.add_argument("--targets", type=int, default=1, help="number of target items")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--data-dir", default=None, help="directory with the real dataset files")
    add_switch_arguments(parser)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser.

    Exposed separately from :func:`main` so tests (and sphinx-argparse-style
    doc tooling) can introspect the full command surface without running
    anything.
    """
    parser = argparse.ArgumentParser(
        prog="fedrecattack",
        description="Reproduction of FedRecAttack (ICDE 2022): run attacks, tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run a single experiment")
    _add_experiment_arguments(run_parser)

    serve_parser = subparsers.add_parser(
        "serve", help="train once, then serve top-K recommendations over HTTP"
    )
    _add_experiment_arguments(serve_parser)
    serve_parser.add_argument("--host", default="127.0.0.1", help="interface to bind")
    serve_parser.add_argument("--port", type=int, default=8080, help="port to bind (0: ephemeral)")
    serve_parser.add_argument(
        "--top-k", type=int, default=10, help="default recommendation list length"
    )
    serve_parser.add_argument(
        "--max-requests",
        type=int,
        default=None,
        help=(
            "stop after this many requests (default: serve until interrupted; "
            "0: bind, report the address and exit — smoke mode)"
        ),
    )
    serve_parser.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        help="per-request response deadline in seconds (default: none; slow answers become 504s)",
    )
    serve_parser.add_argument(
        "--max-in-flight",
        type=int,
        default=None,
        help=(
            "bound on concurrently served /recommend requests (default: unbounded; "
            "excess load is shed with a 503 + Retry-After)"
        ),
    )

    table_parser = subparsers.add_parser("table", help="regenerate one of the paper's tables")
    table_parser.add_argument("table", choices=sorted(_TABLES), help="table number or 'defense'")
    table_parser.add_argument("--profile", choices=("bench", "paper"), default="bench")

    figure_parser = subparsers.add_parser("figure", help="regenerate Figure 3 series")
    figure_parser.add_argument("figure", choices=("3",), help="figure number")
    figure_parser.add_argument("--dataset", default="ml-100k")
    figure_parser.add_argument("--profile", choices=("bench", "paper"), default="bench")

    return parser


def _profile_from_name(name: str) -> ExperimentProfile:
    return PAPER_PROFILE if name == "paper" else BENCH_PROFILE


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    """Build the experiment config shared by ``run`` and ``serve``."""
    return ExperimentConfig(
        dataset=args.dataset,
        scale=args.scale,
        data_dir=args.data_dir,
        attack=args.attack,
        xi=args.xi,
        rho=0.0 if args.attack == "none" else args.rho,
        kappa=args.kappa,
        num_target_items=args.targets,
        num_factors=args.factors,
        num_epochs=args.epochs,
        clients_per_round=args.clients_per_round,
        seed=args.seed,
        **switch_overrides(args),
    )


def _command_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    result = run_experiment(config)
    print(f"dataset={args.dataset} attack={args.attack} rho={config.rho} xi={config.xi}")
    print(f"  malicious clients: {result.num_malicious}")
    print(f"  target items:      {result.target_items.tolist()}")
    if result.exposure is not None:
        print(f"  ER@5:    {result.er_at_5:.4f}")
        print(f"  ER@10:   {result.er_at_10:.4f}")
        print(f"  NDCG@10: {result.target_ndcg_at_10:.4f}")
    if result.accuracy is not None:
        print(f"  HR@10:   {result.hr_at_10:.4f}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    # Imported here so the plain run/table/figure paths never touch the
    # serving layer.
    from repro.serving import RecommenderService, run_http_server

    config = _config_from_args(args)
    result = run_experiment(config)
    assert result.snapshot is not None and result.train is not None
    service = RecommenderService(result.snapshot, result.train, top_k=args.top_k)
    print(
        f"serving dataset={args.dataset} snapshot_version={result.snapshot.version} "
        f"users={result.snapshot.n_users} items={result.snapshot.n_items}"
    )
    if args.max_requests == 0:
        # Smoke mode: prove we can bind (and tear down) without serving.
        host, port = run_http_server(
            service, args.host, args.port, max_requests=0
        )
        print(f"bound http://{host}:{port} (max-requests=0, exiting)")
        return 0
    print(f"listening on http://{args.host}:{args.port} (Ctrl-C to stop)")
    run_http_server(
        service,
        args.host,
        args.port,
        max_requests=args.max_requests,
        request_timeout=args.request_timeout,
        max_in_flight=args.max_in_flight,
    )
    return 0


def _command_table(args: argparse.Namespace) -> int:
    profile = _profile_from_name(args.profile)
    table = _TABLES[args.table](profile)
    print(table)
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    profile = _profile_from_name(args.profile)
    figure = figure3_side_effects(profile, dataset=args.dataset)
    print(figure)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (``python -m repro.cli`` or the ``fedrecattack`` script).

    Parameters
    ----------
    argv:
        Argument list without the program name; ``None`` uses ``sys.argv``.

    Returns
    -------
    int
        Process exit code (0 on success), suitable for ``sys.exit``.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "table":
        return _command_table(args)
    if args.command == "figure":
        return _command_figure(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
