"""Persistent per-dataset interaction structure shared across subsystems.

Three hot paths need fast "which items has user ``u`` interacted with?"
access at scale, and before this module each of them rebuilt its own copy of
that answer:

* the **batched negative sampler** stacked every selected client's boolean
  positive mask into a fresh ``(B, num_items)`` array each round,
* the **attacker's** :class:`~repro.attacks.approximation.UserMatrixApproximator`
  hand-built a mask matrix over its active public users,
* the **evaluation metrics** allocated a fresh per-user mask for every
  sampled-protocol ranking.

:class:`InteractionStore` computes the answer once per dataset: the
interactions in CSR layout (``indptr`` / ``indices``) plus a lazily built,
read-only ``(num_users, num_items)`` boolean mask matrix whose rows are
shared — as views, never copies — by all three consumers.  Obtain the store
through :meth:`repro.data.dataset.InteractionDataset.interaction_store`,
which caches one instance per dataset so every subsystem sees the same
arrays.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing import resource_tracker, shared_memory
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import DataError

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.data.dataset import InteractionDataset

__all__ = ["InteractionStore", "SharedArraySpec", "share_array", "attach_shared_array"]

#: ``(segment_name, shape, dtype_str)`` — everything a worker process needs to
#: attach a read-only view of a shared array (picklable, unlike the segment).
SharedArraySpec = tuple[str, tuple[int, ...], str]


def share_array(array: np.ndarray) -> tuple[shared_memory.SharedMemory, SharedArraySpec]:
    """Copy ``array`` into a fresh shared-memory segment.

    Returns the owning segment — the caller is responsible for ``close()`` and
    ``unlink()`` when done — plus the :data:`SharedArraySpec` a worker process
    passes to :func:`attach_shared_array`.  Segments are at least one byte
    because the OS rejects empty mappings.
    """
    array = np.ascontiguousarray(array)
    segment = shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
    view: np.ndarray = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
    view[...] = array
    return segment, (segment.name, array.shape, array.dtype.str)


def attach_shared_array(
    spec: SharedArraySpec,
) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    """Attach a read-only view of a segment created by :func:`share_array`.

    The caller must keep the returned segment alive as long as the view is
    used and ``close()`` it afterwards; only the creating process unlinks.
    """
    name, shape, dtype = spec
    segment = shared_memory.SharedMemory(name=name)
    if multiprocessing.get_start_method(allow_none=False) != "fork":
        try:
            # Python 3.11 registers even *attached* segments with the resource
            # tracker.  A spawn-started worker has its own tracker, which would
            # unlink the segment at worker exit; undo that registration — the
            # creating process owns the segment's lifetime.  A fork-started
            # worker shares the creator's tracker (registration is a set-level
            # no-op there), so unregistering would instead cancel the
            # *creator's* entry and make its eventual unlink complain.
            resource_tracker.unregister(
                getattr(segment, "_name", segment.name), "shared_memory"
            )
        except Exception:  # pragma: no cover - tracker internals vary by version
            pass
    view: np.ndarray = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
    view.setflags(write=False)
    return segment, view


class InteractionStore:
    """CSR indices plus cached boolean mask rows for one interaction set.

    Parameters
    ----------
    num_users, num_items:
        Shape of the interaction matrix.
    indptr:
        CSR row pointer, shape ``(num_users + 1,)``; user ``u``'s items are
        ``indices[indptr[u]:indptr[u + 1]]``.
    indices:
        Item ids, sorted within each user's slice.

    Both index arrays are frozen read-only: every consumer holds views into
    them, so a mutation anywhere would silently corrupt the sampler, the
    attacker and the evaluator at once.
    """

    def __init__(self, num_users: int, num_items: int, indptr: np.ndarray, indices: np.ndarray) -> None:
        if num_users <= 0 or num_items <= 0:
            raise DataError("num_users and num_items must be positive")
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indptr.shape != (num_users + 1,):
            raise DataError(
                f"indptr must have shape ({num_users + 1},), got {indptr.shape}"
            )
        if indptr[0] != 0 or indptr[-1] != indices.shape[0] or np.any(np.diff(indptr) < 0):
            raise DataError("indptr must be a non-decreasing pointer starting at 0")
        if indices.shape[0] > 0 and (indices.min() < 0 or indices.max() >= num_items):
            raise DataError("item id out of range")
        indptr.setflags(write=False)
        indices.setflags(write=False)
        self._num_users = int(num_users)
        self._num_items = int(num_items)
        self._indptr = indptr
        self._indices = indices
        self._degrees = np.diff(indptr)
        self._degrees.setflags(write=False)
        self._masks: np.ndarray | None = None

    @classmethod
    def from_dataset(cls, dataset: "InteractionDataset") -> "InteractionStore":
        """Build the store from a dataset's (already deduplicated) pairs."""
        pairs = dataset.pairs
        counts = np.bincount(pairs[:, 0], minlength=dataset.num_users)
        indptr = np.zeros(dataset.num_users + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.lexsort((pairs[:, 1], pairs[:, 0]))
        return cls(dataset.num_users, dataset.num_items, indptr, pairs[order, 1])

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_users(self) -> int:
        """Number of users (mask-matrix rows)."""
        return self._num_users

    @property
    def num_items(self) -> int:
        """Catalog size (mask-matrix columns)."""
        return self._num_items

    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointer, shape ``(num_users + 1,)`` (read-only)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR item ids, sorted within each user's slice (read-only)."""
        return self._indices

    @property
    def degrees(self) -> np.ndarray:
        """Interaction count per user, shape ``(num_users,)`` (read-only)."""
        return self._degrees

    @property
    def masks(self) -> np.ndarray:
        """The full ``(num_users, num_items)`` boolean mask matrix (read-only).

        Built once on first access; block consumers (the vectorized evaluator)
        slice contiguous row ranges out of it without copying.
        """
        if self._masks is None:
            masks = np.zeros((self._num_users, self._num_items), dtype=bool)
            if self._indices.shape[0] > 0:
                rows = np.repeat(np.arange(self._num_users, dtype=np.int64), self._degrees)
                masks[rows, self._indices] = True
            masks.setflags(write=False)
            self._masks = masks
        return self._masks

    # ------------------------------------------------------------------ #
    # Shared-memory export (sharded round engine)
    # ------------------------------------------------------------------ #
    def shared_memory_export(
        self,
    ) -> dict[str, tuple[shared_memory.SharedMemory, SharedArraySpec]]:
        """The CSR arrays copied once into shared-memory segments.

        This is how the sharded round engine ships the interaction structure
        to its worker processes: each worker attaches read-only views of the
        two segments (:func:`attach_shared_array`) instead of receiving a
        pickled copy of the dataset per task.  The caller owns the returned
        segments and must ``close()``/``unlink()`` them when the pool dies.
        """
        return {
            "indptr": share_array(self._indptr),
            "indices": share_array(self._indices),
        }

    # ------------------------------------------------------------------ #
    # Per-user / per-block access
    # ------------------------------------------------------------------ #
    def positives(self, user: int) -> np.ndarray:
        """Sorted items of ``user`` — a read-only view into the CSR indices."""
        self._check_user(user)
        return self._indices[self._indptr[user] : self._indptr[user + 1]]

    def degree(self, user: int) -> int:
        """Interaction count of ``user``."""
        self._check_user(user)
        return int(self._degrees[user])

    def mask_row(self, user: int) -> np.ndarray:
        """Boolean positive mask of ``user`` — a read-only view, never a copy."""
        self._check_user(user)
        return self.masks[user]

    def mask_block(self, lo: int, hi: int) -> np.ndarray:
        """Contiguous mask rows ``[lo, hi)`` — a read-only view, never a copy.

        This is the blocked-evaluation entry point: both evaluation engines
        partition the users into contiguous blocks, so their positive masks
        (and the batched ranking-negative draw that tests candidates against
        them) slice straight out of the shared matrix.
        """
        if lo < 0 or hi > self._num_users or lo > hi:
            raise DataError(
                f"block [{lo}, {hi}) out of range [0, {self._num_users})"
            )
        return self.masks[lo:hi]

    def mask_rows(self, users: np.ndarray) -> np.ndarray:
        """Stacked masks of ``users`` as a fresh *writable* ``(B, num_items)`` array.

        This is the batched-sampler entry point: the gather replaces the old
        per-client ``np.stack`` loop, and because the result is a private
        copy the caller may hand it to
        :func:`~repro.data.negative_sampling.sample_uniform_negatives_batched`
        with ``copy=False`` and let the sampler scribble on it.
        """
        users = np.asarray(users, dtype=np.int64)
        if users.shape[0] > 0 and (users.min() < 0 or users.max() >= self._num_users):
            raise DataError("user id out of range")
        return self.masks[users]

    def _check_user(self, user: int) -> None:
        if user < 0 or user >= self._num_users:
            raise DataError(f"user id {user} out of range [0, {self._num_users})")

    def __repr__(self) -> str:
        return (
            f"InteractionStore(users={self._num_users}, items={self._num_items}, "
            f"nnz={self._indices.shape[0]}, masks_built={self._masks is not None})"
        )
