"""Dataset substrate: interaction data, splits, public-interaction exposure.

This subpackage provides everything the paper's evaluation needs on the data
side:

* :class:`~repro.data.dataset.InteractionDataset` — implicit-feedback
  user/item interactions with fast per-user access,
* synthetic generators calibrated to MovieLens-100K, MovieLens-1M and
  Steam-200K (used when the real files are not on disk),
* loaders for the real dataset files when they are available,
* leave-one-out train/test splitting as used in the paper,
* public-interaction sampling (the attacker's prior knowledge, ratio ``xi``),
* negative sampling for BPR training (the per-user permutation engine and
  the stacked batched rejection sampler),
* dataset statistics reproducing Table II.
"""

from repro.data.dataset import InteractionDataset
from repro.data.loaders import load_dataset, load_movielens_file, load_steam_file
from repro.data.negative_sampling import (
    SAMPLER_ENGINES,
    NegativeSampler,
    sample_uniform_negatives,
    sample_uniform_negatives_batched,
)
from repro.data.presets import (
    DATASET_PRESETS,
    DatasetPreset,
    get_preset,
    scaled_preset,
)
from repro.data.public import PublicInteractions, sample_public_interactions
from repro.data.store import InteractionStore
from repro.data.splits import TrainTestSplit, leave_one_out_split
from repro.data.stats import DatasetStatistics, compute_statistics, statistics_table
from repro.data.synthetic import SyntheticConfig, generate_synthetic_dataset

__all__ = [
    "InteractionDataset",
    "InteractionStore",
    "NegativeSampler",
    "SAMPLER_ENGINES",
    "sample_uniform_negatives",
    "sample_uniform_negatives_batched",
    "PublicInteractions",
    "sample_public_interactions",
    "TrainTestSplit",
    "leave_one_out_split",
    "DatasetStatistics",
    "compute_statistics",
    "statistics_table",
    "SyntheticConfig",
    "generate_synthetic_dataset",
    "DatasetPreset",
    "DATASET_PRESETS",
    "get_preset",
    "scaled_preset",
    "load_dataset",
    "load_movielens_file",
    "load_steam_file",
]
