"""Public-interaction sampling — the attacker's prior knowledge.

The paper assumes a small fraction ``xi`` of interactions is public (likes,
follows, comments) and accessible to the attacker (Section III-C).  For every
user a random subset of their training interactions is exposed so that
``|D'| <= xi * |D|``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.exceptions import DataError
from repro.rng import ensure_rng

__all__ = ["PublicInteractions", "sample_public_interactions"]


@dataclass(frozen=True)
class PublicInteractions:
    """The public subset ``D'`` of the training interactions.

    Attributes
    ----------
    dataset:
        The public interactions as an :class:`InteractionDataset` defined over
        the same user/item universe as the training data.
    xi:
        The requested public fraction.
    """

    dataset: InteractionDataset
    xi: float

    @property
    def num_interactions(self) -> int:
        """Size of ``D'``."""
        return self.dataset.num_interactions

    def positive_items(self, user: int) -> np.ndarray:
        """Public items of ``user`` (possibly empty)."""
        return self.dataset.positive_items(user)

    def users_with_public_interactions(self) -> np.ndarray:
        """Ids of users that have at least one public interaction."""
        degrees = self.dataset.user_degrees()
        return np.flatnonzero(degrees > 0)


def sample_public_interactions(
    train: InteractionDataset,
    xi: float,
    rng: np.random.Generator | int | None = None,
) -> PublicInteractions:
    """Expose a fraction ``xi`` of the training interactions to the attacker.

    Every training interaction is exposed independently with probability
    ``xi`` which keeps the expected public fraction exactly ``xi`` and, as in
    the paper, leaves many users with zero or one public interaction at small
    ``xi``.  ``xi = 0`` yields an empty public set (used by the Table IX
    ablation).
    """
    if not 0.0 <= xi <= 1.0:
        raise DataError(f"xi must be in [0, 1], got {xi}")
    generator = ensure_rng(rng)
    pairs = train.pairs
    if xi == 0.0 or pairs.shape[0] == 0:
        selected = np.empty((0, 2), dtype=np.int64)
    else:
        mask = generator.random(pairs.shape[0]) < xi
        selected = pairs[mask]
    public_dataset = InteractionDataset(
        train.num_users, train.num_items, selected, name=f"{train.name}-public"
    )
    return PublicInteractions(dataset=public_dataset, xi=xi)
