"""Synthetic implicit-feedback generators calibrated to the paper's datasets.

The evaluation uses MovieLens-100K, MovieLens-1M and Steam-200K.  This
environment has no network access, so when the real files are absent the
library generates synthetic datasets with matched aggregate statistics:

* the same number of users, items and interactions (hence the same sparsity),
* a Zipf-like long-tailed item popularity distribution,
* a log-normal per-user activity distribution,
* light user/item affinity structure (latent clusters) so collaborative
  filtering has signal to learn, which is required for HR@10 to rise during
  training as in Figure 3.

The attack's behaviour depends on these structural properties rather than on
the identity of particular movies, so the synthetic substitute preserves the
phenomena the paper measures (see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.data.presets import DatasetPreset
from repro.exceptions import DataError
from repro.rng import ensure_rng

__all__ = ["SyntheticConfig", "generate_synthetic_dataset"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the synthetic interaction generator.

    Attributes
    ----------
    num_users, num_items, num_interactions:
        Target sizes; the generated dataset matches users/items exactly and
        interactions approximately (duplicates are merged).
    popularity_exponent:
        Zipf exponent of item popularity.
    activity_sigma:
        Log-normal sigma of user activity.
    num_clusters:
        Number of latent user/item affinity clusters.
    cluster_strength:
        In [0, 1); how strongly users prefer items of their own cluster.
    min_interactions_per_user:
        Every user receives at least this many interactions so leave-one-out
        splitting and BPR training are well defined.
    name:
        Name given to the generated dataset.
    """

    num_users: int
    num_items: int
    num_interactions: int
    popularity_exponent: float = 1.0
    activity_sigma: float = 1.0
    num_clusters: int = 8
    cluster_strength: float = 0.65
    min_interactions_per_user: int = 4
    name: str = "synthetic"

    def validate(self) -> None:
        """Raise :class:`DataError` if the configuration is inconsistent."""
        if self.num_users <= 0 or self.num_items <= 0:
            raise DataError("num_users and num_items must be positive")
        if self.num_interactions < self.num_users * self.min_interactions_per_user:
            raise DataError(
                "num_interactions too small to give every user "
                f"{self.min_interactions_per_user} interactions"
            )
        if self.num_interactions > self.num_users * self.num_items:
            raise DataError("num_interactions exceeds the size of the interaction matrix")
        if not 0.0 <= self.cluster_strength < 1.0:
            raise DataError("cluster_strength must be in [0, 1)")
        if self.num_clusters <= 0:
            raise DataError("num_clusters must be positive")

    @classmethod
    def from_preset(cls, preset: DatasetPreset) -> "SyntheticConfig":
        """Build a generator configuration from a :class:`DatasetPreset`."""
        return cls(
            num_users=preset.num_users,
            num_items=preset.num_items,
            num_interactions=preset.num_interactions,
            popularity_exponent=preset.popularity_exponent,
            activity_sigma=preset.activity_sigma,
            name=preset.name,
        )


def generate_synthetic_dataset(
    config: SyntheticConfig,
    rng: np.random.Generator | int | None = None,
) -> InteractionDataset:
    """Generate an :class:`InteractionDataset` according to ``config``."""
    config.validate()
    generator = ensure_rng(rng)

    user_budgets = _user_interaction_budgets(config, generator)
    item_weights = _item_popularity_weights(config)
    user_clusters = generator.integers(0, config.num_clusters, size=config.num_users)
    item_clusters = generator.integers(0, config.num_clusters, size=config.num_items)

    pairs: list[np.ndarray] = []
    for user in range(config.num_users):
        budget = int(user_budgets[user])
        weights = _personalised_weights(
            item_weights,
            item_clusters,
            int(user_clusters[user]),
            config.cluster_strength,
        )
        items = _weighted_sample_without_replacement(weights, budget, generator)
        pairs.append(np.column_stack([np.full(items.shape[0], user, dtype=np.int64), items]))

    interactions = np.concatenate(pairs, axis=0)
    return InteractionDataset(
        config.num_users, config.num_items, interactions, name=config.name
    )


def _user_interaction_budgets(
    config: SyntheticConfig, rng: np.random.Generator
) -> np.ndarray:
    """Draw per-user interaction counts with a log-normal activity profile."""
    raw = rng.lognormal(mean=0.0, sigma=config.activity_sigma, size=config.num_users)
    raw = raw / raw.sum()
    budgets = np.maximum(
        config.min_interactions_per_user,
        np.round(raw * config.num_interactions).astype(np.int64),
    )
    budgets = np.minimum(budgets, config.num_items - 1)
    # Rescale towards the requested total without violating the bounds.
    excess = int(budgets.sum()) - config.num_interactions
    if excess > 0:
        order = np.argsort(-budgets, kind="stable")
        for user in order:
            if excess <= 0:
                break
            reducible = int(budgets[user]) - config.min_interactions_per_user
            take = min(reducible, excess)
            budgets[user] -= take
            excess -= take
    elif excess < 0:
        deficit = -excess
        order = np.argsort(budgets, kind="stable")
        for user in order:
            if deficit <= 0:
                break
            headroom = (config.num_items - 1) - int(budgets[user])
            give = min(headroom, deficit)
            budgets[user] += give
            deficit -= give
    return budgets


def _item_popularity_weights(config: SyntheticConfig) -> np.ndarray:
    """Zipf-like base popularity of every item."""
    ranks = np.arange(1, config.num_items + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, config.popularity_exponent)
    return weights / weights.sum()


def _personalised_weights(
    base_weights: np.ndarray,
    item_clusters: np.ndarray,
    user_cluster: int,
    cluster_strength: float,
) -> np.ndarray:
    """Mix global popularity with the user's cluster preference."""
    affinity = np.where(item_clusters == user_cluster, 1.0, 1.0 - cluster_strength)
    weights = base_weights * affinity
    return weights / weights.sum()


def _weighted_sample_without_replacement(
    weights: np.ndarray, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``count`` item indices without replacement, weighted by ``weights``.

    Uses the Efraimidis-Spirakis exponential-sort trick which is fully
    vectorised and exact for weighted sampling without replacement.
    """
    count = min(count, weights.shape[0])
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    keys = rng.exponential(size=weights.shape[0]) / np.maximum(weights, 1e-12)
    return np.argpartition(keys, count - 1)[:count].astype(np.int64)
