"""Dataset loaders.

``load_dataset`` is the single entry point used throughout the library: it
returns one of the paper's three datasets, preferring the real files when a
data directory containing them is supplied and falling back to the calibrated
synthetic generator otherwise (this environment has no network access, see
DESIGN.md).  The individual file parsers are exposed for users who have the
original MovieLens / Steam files on disk.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.data.presets import get_preset, scaled_preset
from repro.data.synthetic import SyntheticConfig, generate_synthetic_dataset
from repro.exceptions import DataError
from repro.rng import ensure_rng

__all__ = ["load_dataset", "load_movielens_file", "load_steam_file"]


def load_movielens_file(path: str | os.PathLike[str], name: str = "movielens") -> InteractionDataset:
    """Parse a MovieLens ratings file into implicit feedback.

    Supports the ``u.data`` format of MovieLens-100K (tab separated) and the
    ``ratings.dat`` format of MovieLens-1M (``::`` separated).  All ratings
    are converted to implicit feedback, as in the paper's preprocessing.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise DataError(f"MovieLens file not found: {file_path}")
    users: list[int] = []
    items: list[int] = []
    with file_path.open("r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            fields = line.split("::") if "::" in line else line.split()
            if len(fields) < 2:
                raise DataError(f"malformed MovieLens line: {line!r}")
            users.append(int(fields[0]))
            items.append(int(fields[1]))
    return _from_raw_ids(users, items, name)


def load_steam_file(path: str | os.PathLike[str], name: str = "steam-200k") -> InteractionDataset:
    """Parse the Steam-200K behaviour CSV into implicit feedback.

    Rows look like ``user_id,"Game Name",behaviour,value,0``; both ``own``
    (labelled ``purchase``) and ``play`` rows are treated as interactions and
    duplicates are merged, matching the paper's preprocessing.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise DataError(f"Steam file not found: {file_path}")
    users: list[str] = []
    items: list[str] = []
    with file_path.open("r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            fields = _split_csv_line(line)
            if len(fields) < 3:
                raise DataError(f"malformed Steam line: {line!r}")
            users.append(fields[0])
            items.append(fields[1])
    return _from_raw_ids(users, items, name)


def load_dataset(
    name: str,
    data_dir: str | os.PathLike[str] | None = None,
    scale: float = 1.0,
    rng: np.random.Generator | int | None = None,
) -> InteractionDataset:
    """Load one of the paper's datasets by preset name.

    Parameters
    ----------
    name:
        ``"ml-100k"``, ``"ml-1m"`` or ``"steam-200k"``.
    data_dir:
        Directory containing the original dataset files.  When provided and
        the expected file exists, the real data is used (``scale`` is then
        ignored); otherwise a calibrated synthetic dataset is generated.
    scale:
        Uniform down-scaling factor for the synthetic fallback, see
        :func:`repro.data.presets.scaled_preset`.
    rng:
        Randomness for the synthetic generator.
    """
    preset_name = name.lower()
    if data_dir is not None:
        real = _try_load_real(preset_name, Path(data_dir))
        if real is not None:
            return real
    preset = scaled_preset(preset_name, scale) if scale != 1.0 else get_preset(preset_name)
    config = SyntheticConfig.from_preset(preset)
    return generate_synthetic_dataset(config, ensure_rng(rng))


_REAL_FILES = {
    "ml-100k": ("u.data", load_movielens_file),
    "ml-1m": ("ratings.dat", load_movielens_file),
    "steam-200k": ("steam-200k.csv", load_steam_file),
}


def _try_load_real(name: str, data_dir: Path) -> InteractionDataset | None:
    if name not in _REAL_FILES:
        return None
    filename, parser = _REAL_FILES[name]
    candidates = [data_dir / filename, data_dir / name / filename]
    for candidate in candidates:
        if candidate.exists():
            return parser(candidate, name=name)
    return None


def _from_raw_ids(
    users: list[int | str], items: list[int | str], name: str
) -> InteractionDataset:
    """Map arbitrary raw ids to contiguous indices and build the dataset."""
    if not users:
        raise DataError("no interactions parsed from file")
    user_index: dict[int | str, int] = {}
    item_index: dict[int | str, int] = {}
    pairs = np.empty((len(users), 2), dtype=np.int64)
    for row, (user, item) in enumerate(zip(users, items)):
        pairs[row, 0] = user_index.setdefault(user, len(user_index))
        pairs[row, 1] = item_index.setdefault(item, len(item_index))
    return InteractionDataset(len(user_index), len(item_index), pairs, name=name)


def _split_csv_line(line: str) -> list[str]:
    """Minimal CSV splitter that honours double-quoted fields."""
    fields: list[str] = []
    current: list[str] = []
    in_quotes = False
    for char in line:
        if char == '"':
            in_quotes = not in_quotes
        elif char == "," and not in_quotes:
            fields.append("".join(current))
            current = []
        else:
            current.append(char)
    fields.append("".join(current))
    return fields
