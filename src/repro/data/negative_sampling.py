"""Negative sampling for BPR training.

Each user client samples a set of negative items ``V-_i'`` of the same size
as its positive set and trains on the paired loss of Eq. (4).  The sampler
below reproduces that: it draws uniform negatives that the user has not
interacted with, optionally resampling every round.

:func:`sample_uniform_negatives` is the shared mask-based implementation used
by both the data-layer :class:`NegativeSampler` and the federated clients —
it replaces the old per-item Python rejection loop with vectorised draws.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.exceptions import DataError
from repro.rng import ensure_rng

__all__ = ["NegativeSampler", "sample_uniform_negatives"]


def sample_uniform_negatives(
    rng: np.random.Generator,
    num_items: int,
    count: int,
    positive_mask: np.ndarray,
    num_positives: int | None = None,
) -> np.ndarray:
    """Draw ``count`` distinct uniform negatives outside ``positive_mask``.

    Fully vectorised and exact: a random permutation of the catalog is
    filtered through the boolean mask and truncated, which is an unbiased
    uniform draw without replacement from the complement of the positives —
    no rejection loop, no Python-level per-item work.  ``num_positives`` (the
    mask's popcount) can be passed by callers that cache it.
    """
    if num_positives is None:
        num_positives = int(positive_mask.sum())
    count = min(count, num_items - num_positives)
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    permutation = rng.permutation(num_items)
    negatives = permutation[~positive_mask[permutation]]
    return negatives[:count]


class NegativeSampler:
    """Samples negative items for users of an :class:`InteractionDataset`."""

    def __init__(
        self,
        dataset: InteractionDataset,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self._dataset = dataset
        self._rng = ensure_rng(rng)

    def sample_for_user(self, user: int, count: int | None = None) -> np.ndarray:
        """Sample ``count`` negative items for ``user``.

        ``count`` defaults to the size of the user's positive set, matching
        ``|V-_i'| = |V+_i|`` in Section III-B.  If the user has interacted
        with nearly every item the sample may contain fewer items.
        """
        positives = self._dataset.positive_items(user)
        if count is None:
            count = positives.shape[0]
        if count < 0:
            raise DataError(f"count must be non-negative, got {count}")
        num_items = self._dataset.num_items
        positive_mask = np.zeros(num_items, dtype=bool)
        positive_mask[positives] = True
        return sample_uniform_negatives(self._rng, num_items, count, positive_mask)

    def sample_pairs(self, user: int) -> tuple[np.ndarray, np.ndarray]:
        """Return aligned arrays of positive and negative items for ``user``.

        This is the pairing ``V_i = {(v+_i1, v-_i1), ...}`` of Eq. (4).
        """
        positives = self._dataset.positive_items(user)
        negatives = self.sample_for_user(user, positives.shape[0])
        if negatives.shape[0] < positives.shape[0]:
            positives = positives[: negatives.shape[0]]
        return positives, negatives
