"""Negative sampling for BPR training.

Each user client samples a set of negative items ``V-_i'`` of the same size
as its positive set and trains on the paired loss of Eq. (4).  Two sampling
engines implement that draw (selected by ``FederatedConfig.sampler``):

* :func:`sample_uniform_negatives` — the ``"permutation"`` engine.  One user
  at a time, a random permutation of the catalog is filtered through the
  user's positive mask and truncated: an exact uniform draw without
  replacement, consumed from a *per-user* RNG stream.  This is the historical
  engine and the default; its realizations are frozen by the engine
  equivalence contract.
* :func:`sample_uniform_negatives_batched` — the ``"batched"`` engine.  One
  stacked rejection-sampling pass draws negatives for *many* users at once
  from a *single shared* RNG stream: oversampled uniform candidates, masked
  against the stacked positive masks, deduplicated in draw order, and
  resampled until every user has its quota.  Accepting candidates in draw
  order (skipping rejects and duplicates) is classic rejection sampling, so
  each user's accepted set is still an exact uniform draw without
  replacement from the complement of its positives — only the random
  *stream* (and therefore every training realization) differs from the
  permutation engine.

Both engines are exact; see ``docs/architecture.md`` for the two RNG
contracts and which simulation streams feed them.

A third stacked draw, :func:`sample_ranking_negatives_batched`, serves the
*evaluation* side: the sampled ranking protocol's ``"batched"`` stream
(``FederatedConfig.eval_sampler``) draws one score-block's ranking negatives
with replacement in a single rejection-sampling pass, optionally excluding
each row's held-out test item.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.exceptions import DataError
from repro.rng import ensure_rng

__all__ = [
    "NegativeSampler",
    "sample_uniform_negatives",
    "sample_uniform_negatives_batched",
    "sample_ranking_negatives_batched",
    "SAMPLER_ENGINES",
]

#: The valid values of every ``sampler`` switch in the package.
SAMPLER_ENGINES = ("permutation", "batched")


def sample_uniform_negatives(
    rng: np.random.Generator,
    num_items: int,
    count: int,
    positive_mask: np.ndarray,
    num_positives: int | None = None,
) -> np.ndarray:
    """Draw ``count`` distinct uniform negatives outside ``positive_mask``.

    Fully vectorised and exact: a random permutation of the catalog is
    filtered through the boolean mask and truncated, which is an unbiased
    uniform draw without replacement from the complement of the positives —
    no rejection loop, no Python-level per-item work.  ``num_positives`` (the
    mask's popcount) can be passed by callers that cache it.
    """
    if num_positives is None:
        num_positives = int(positive_mask.sum())
    count = min(count, num_items - num_positives)
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    permutation = rng.permutation(num_items)
    negatives = permutation[~positive_mask[permutation]]
    return negatives[:count]


def sample_uniform_negatives_batched(
    rng: np.random.Generator,
    num_items: int,
    counts: np.ndarray,
    positive_masks: np.ndarray,
    *,
    copy: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw distinct uniform negatives for ``B`` users in one stacked pass.

    Parameters
    ----------
    rng:
        The shared stream the whole batch consumes (the batched sampler's RNG
        contract: one stream per draw site, not one per user).
    num_items:
        Catalog size ``N``.
    counts:
        Requested negatives per user, shape ``(B,)``.  Automatically capped at
        each user's complement size ``N - |positives|``.
    positive_masks:
        Stacked boolean positive masks, shape ``(B, N)``.  Not modified when
        ``copy=True`` (the default).
    copy:
        ``False`` lets the sampler use ``positive_masks`` as its scratch
        "taken" bitmap instead of copying it.  Only pass ``False`` for a
        private array the caller relinquishes — e.g. the fresh gather
        returned by :meth:`repro.data.store.InteractionStore.mask_rows` —
        since the rows are mutated in place.

    Returns
    -------
    (negatives, offsets):
        CSR-style result: user ``b``'s negatives are
        ``negatives[offsets[b]:offsets[b + 1]]``, in acceptance (draw) order.

    The rejection loop oversamples each round by the inverse acceptance
    probability, so even users whose positives cover most of the catalog
    finish in a handful of rounds; every candidate is tested against the
    positives *and* the already-accepted items, and duplicates within a round
    are dropped keeping first occurrences, which makes the accepted sequence
    an exact uniform draw without replacement.
    """
    counts = np.asarray(counts, dtype=np.int64)
    num_users = counts.shape[0]
    if positive_masks.shape != (num_users, num_items):
        raise DataError(
            f"positive_masks must have shape ({num_users}, {num_items}), "
            f"got {positive_masks.shape}"
        )
    if np.any(counts < 0):
        raise DataError("counts must be non-negative")
    num_positives = positive_masks.sum(axis=1)
    counts = np.minimum(counts, num_items - num_positives)
    offsets = np.zeros(num_users + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    total = int(offsets[-1])
    negatives = np.empty(total, dtype=np.int64)
    if total == 0:
        return negatives, offsets

    # ``taken`` marks everything a candidate must avoid: the user's positives
    # plus its already-accepted negatives from earlier rejection rounds.
    taken = positive_masks.copy() if copy else positive_masks
    filled = np.zeros(num_users, dtype=np.int64)
    remaining = counts.copy()
    pending = np.flatnonzero(remaining > 0)
    while pending.shape[0] > 0:
        # Acceptance probability per pending user; oversample accordingly
        # (plus slack) so nearly every user finishes this round.
        free = num_items - num_positives[pending] - filled[pending]
        draws = np.ceil(remaining[pending] * (num_items / free) * 1.2).astype(np.int64) + 4
        owners = np.repeat(np.arange(pending.shape[0], dtype=np.int64), draws)
        candidates = rng.integers(0, num_items, size=owners.shape[0], dtype=np.int64)
        ok = ~taken[pending[owners], candidates]
        owners, candidates = owners[ok], candidates[ok]
        # Deduplicate per (user, item) keeping first occurrences, then restore
        # draw order so truncation to the remaining quota stays unbiased.
        keys = owners * num_items + candidates
        _, first = np.unique(keys, return_index=True)
        first.sort()
        owners, candidates = owners[first], candidates[first]
        # Rank of each accepted candidate within its user (owners are sorted
        # ascending after np.unique + sort, with draw order preserved inside
        # each user because keys share the owner's block).
        starts = np.searchsorted(owners, np.arange(pending.shape[0]))
        ranks = np.arange(owners.shape[0], dtype=np.int64) - starts[owners]
        keep = ranks < remaining[pending[owners]]
        owners, candidates, ranks = owners[keep], candidates[keep], ranks[keep]
        users = pending[owners]
        taken[users, candidates] = True
        negatives[offsets[users] + filled[users] + ranks] = candidates
        accepted = np.bincount(owners, minlength=pending.shape[0])
        filled[pending] += accepted
        remaining[pending] -= accepted
        pending = pending[remaining[pending] > 0]
    return negatives, offsets


def sample_ranking_negatives_batched(
    rng: np.random.Generator,
    num_items: int,
    counts: np.ndarray,
    positive_masks: np.ndarray,
    excluded_items: np.ndarray,
    *,
    num_positives: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ranking negatives for ``B`` users in one stacked pass.

    This is the stacked core of the ``"batched"`` *evaluation* stream: unlike
    the training draw of :func:`sample_uniform_negatives_batched` it samples
    **with replacement** (the sampled ranking protocol accepts repeated
    negatives, exactly like the per-user
    :func:`repro.metrics.accuracy.draw_ranking_negatives`), and each row may
    exclude one extra item — the row's held-out test item — on top of its
    positives.

    Parameters
    ----------
    rng:
        The shared stream the whole batch consumes (one stream per draw
        site, not one per user).
    num_items:
        Catalog size ``N``.
    counts:
        Requested negatives per row, shape ``(B,)``.  A row whose positives
        plus excluded item cover the whole catalog receives **zero**
        negatives (mirroring the per-user draw, which gives up after one
        empty rejection round); because the draw is with replacement, every
        other row receives exactly its requested count.
    positive_masks:
        Stacked boolean positive masks, shape ``(B, N)``.  Never mutated —
        read-only views (e.g. contiguous
        :meth:`repro.data.store.InteractionStore.mask_block` slices) are
        welcome, which is what keeps the stacked draw allocation-free per
        block.
    excluded_items:
        One extra excluded item id per row, shape ``(B,)``; negative values
        mean "no exclusion".
    num_positives:
        Optional per-row popcount of ``positive_masks`` for callers that
        cache it (e.g. :attr:`InteractionStore.degrees`); computed from the
        masks when omitted.

    Returns
    -------
    (negatives, offsets):
        CSR-style result: row ``b``'s negatives are
        ``negatives[offsets[b]:offsets[b + 1]]``, in acceptance (draw) order.

    Every rejection round oversamples the pending rows by the inverse
    acceptance probability (plus slack), tests the flat candidate vector
    against the positive masks and the excluded items, and keeps each row's
    accepted candidates in draw order up to its remaining quota — classic
    rejection sampling, so each accepted draw is an exact uniform sample
    from the row's free items.
    """
    counts = np.asarray(counts, dtype=np.int64)
    num_rows = counts.shape[0]
    excluded_items = np.asarray(excluded_items, dtype=np.int64)
    if positive_masks.shape != (num_rows, num_items):
        raise DataError(
            f"positive_masks must have shape ({num_rows}, {num_items}), "
            f"got {positive_masks.shape}"
        )
    if excluded_items.shape != (num_rows,):
        raise DataError(
            f"excluded_items must have shape ({num_rows},), got {excluded_items.shape}"
        )
    if np.any(excluded_items >= num_items):
        raise DataError("excluded item id out of range")
    if np.any(counts < 0):
        raise DataError("counts must be non-negative")
    if num_positives is None:
        num_positives = positive_masks.sum(axis=1)
    # Free items per row: the catalog minus the positives, minus the excluded
    # item when it is valid and not already a positive.
    excluded_is_free = np.zeros(num_rows, dtype=np.int64)
    excludable = np.flatnonzero(excluded_items >= 0)
    if excludable.shape[0] > 0:
        excluded_is_free[excludable] = ~positive_masks[
            excludable, excluded_items[excludable]
        ]
    free = num_items - np.asarray(num_positives, dtype=np.int64) - excluded_is_free
    effective = np.where(free > 0, counts, 0)
    offsets = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(effective, out=offsets[1:])
    total = int(offsets[-1])
    negatives = np.empty(total, dtype=np.int64)
    if total == 0:
        return negatives, offsets

    filled = np.zeros(num_rows, dtype=np.int64)
    remaining = effective.copy()
    pending = np.flatnonzero(remaining > 0)
    while pending.shape[0] > 0:
        # Acceptance probability per pending row is free/N; oversample
        # accordingly (plus slack) so nearly every row finishes this round.
        draws = np.ceil(remaining[pending] * (num_items / free[pending]) * 1.2).astype(
            np.int64
        ) + 4
        owners = np.repeat(np.arange(pending.shape[0], dtype=np.int64), draws)
        candidates = rng.integers(0, num_items, size=owners.shape[0], dtype=np.int64)
        rows = pending[owners]
        ok = ~positive_masks[rows, candidates] & (candidates != excluded_items[rows])
        owners, candidates = owners[ok], candidates[ok]
        # Rank of each accepted candidate within its owner (owners stay sorted
        # ascending with draw order preserved inside each owner's run), then
        # truncate to the remaining quota — with replacement, no dedup.
        starts = np.searchsorted(owners, np.arange(pending.shape[0]))
        ranks = np.arange(owners.shape[0], dtype=np.int64) - starts[owners]
        keep = ranks < remaining[pending[owners]]
        owners, candidates, ranks = owners[keep], candidates[keep], ranks[keep]
        rows = pending[owners]
        negatives[offsets[rows] + filled[rows] + ranks] = candidates
        accepted = np.bincount(owners, minlength=pending.shape[0])
        filled[pending] += accepted
        remaining[pending] -= accepted
        pending = pending[remaining[pending] > 0]
    return negatives, offsets


class NegativeSampler:
    """Samples negative items for users of an :class:`InteractionDataset`.

    ``sampler`` selects the engine: ``"permutation"`` (default, one
    catalog permutation per call) or ``"batched"`` (the stacked
    rejection-sampling pass, here degenerate at batch size one but consuming
    the same kind of stream as the federated round sampler).
    """

    def __init__(
        self,
        dataset: InteractionDataset,
        rng: np.random.Generator | int | None = None,
        sampler: str = "permutation",
    ) -> None:
        if sampler not in SAMPLER_ENGINES:
            raise DataError(
                f"sampler must be one of {SAMPLER_ENGINES}, got {sampler!r}"
            )
        self._dataset = dataset
        self._rng = ensure_rng(rng)
        self._sampler = sampler

    def sample_for_user(self, user: int, count: int | None = None) -> np.ndarray:
        """Sample ``count`` negative items for ``user``.

        ``count`` defaults to the size of the user's positive set, matching
        ``|V-_i'| = |V+_i|`` in Section III-B.  If the user has interacted
        with nearly every item the sample may contain fewer items.
        """
        positives = self._dataset.positive_items(user)
        if count is None:
            count = positives.shape[0]
        if count < 0:
            raise DataError(f"count must be non-negative, got {count}")
        num_items = self._dataset.num_items
        positive_mask = np.zeros(num_items, dtype=bool)
        positive_mask[positives] = True
        if self._sampler == "batched":
            negatives, _ = sample_uniform_negatives_batched(
                self._rng,
                num_items,
                np.array([count], dtype=np.int64),
                positive_mask[None, :],
            )
            return negatives
        return sample_uniform_negatives(self._rng, num_items, count, positive_mask)

    def sample_pairs(self, user: int) -> tuple[np.ndarray, np.ndarray]:
        """Return aligned arrays of positive and negative items for ``user``.

        This is the pairing ``V_i = {(v+_i1, v-_i1), ...}`` of Eq. (4).
        """
        positives = self._dataset.positive_items(user)
        negatives = self.sample_for_user(user, positives.shape[0])
        if negatives.shape[0] < positives.shape[0]:
            positives = positives[: negatives.shape[0]]
        return positives, negatives
