"""Negative sampling for BPR training.

Each user client samples a set of negative items ``V-_i'`` of the same size
as its positive set and trains on the paired loss of Eq. (4).  The sampler
below reproduces that: it draws uniform negatives that the user has not
interacted with, optionally resampling every round.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.exceptions import DataError
from repro.rng import ensure_rng

__all__ = ["NegativeSampler"]


class NegativeSampler:
    """Samples negative items for users of an :class:`InteractionDataset`."""

    def __init__(
        self,
        dataset: InteractionDataset,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self._dataset = dataset
        self._rng = ensure_rng(rng)

    def sample_for_user(self, user: int, count: int | None = None) -> np.ndarray:
        """Sample ``count`` negative items for ``user``.

        ``count`` defaults to the size of the user's positive set, matching
        ``|V-_i'| = |V+_i|`` in Section III-B.  If the user has interacted
        with nearly every item the sample may contain fewer items.
        """
        positives = self._dataset.positive_items(user)
        if count is None:
            count = positives.shape[0]
        if count < 0:
            raise DataError(f"count must be non-negative, got {count}")
        num_items = self._dataset.num_items
        available = num_items - positives.shape[0]
        if available <= 0:
            return np.empty(0, dtype=np.int64)
        count = min(count, available)
        positive_mask = np.zeros(num_items, dtype=bool)
        positive_mask[positives] = True
        # Rejection sampling is fast when the dataset is sparse (which all
        # three paper datasets are, >93% sparsity); fall back to exact
        # sampling from the complement when it is not.
        if positives.shape[0] < num_items // 2:
            negatives: list[int] = []
            seen: set[int] = set()
            while len(negatives) < count:
                draws = self._rng.integers(0, num_items, size=2 * (count - len(negatives)))
                for item in draws:
                    item = int(item)
                    if not positive_mask[item] and item not in seen:
                        seen.add(item)
                        negatives.append(item)
                        if len(negatives) == count:
                            break
            return np.array(negatives, dtype=np.int64)
        complement = np.flatnonzero(~positive_mask)
        return self._rng.choice(complement, size=count, replace=False)

    def sample_pairs(self, user: int) -> tuple[np.ndarray, np.ndarray]:
        """Return aligned arrays of positive and negative items for ``user``.

        This is the pairing ``V_i = {(v+_i1, v-_i1), ...}`` of Eq. (4).
        """
        positives = self._dataset.positive_items(user)
        negatives = self.sample_for_user(user, positives.shape[0])
        if negatives.shape[0] < positives.shape[0]:
            positives = positives[: negatives.shape[0]]
        return positives, negatives
