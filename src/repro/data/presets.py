"""Dataset presets matching the paper's three evaluation datasets.

Table II of the paper lists the sizes of MovieLens-100K, MovieLens-1M and
Steam-200K.  Each :class:`DatasetPreset` records those published statistics
plus the shape parameters the synthetic generator uses to match the
popularity skew and per-user activity of the real dataset.  A preset can be
scaled down uniformly (keeping sparsity and skew) so the full benchmark suite
runs in minutes on a laptop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.exceptions import ConfigurationError

__all__ = ["DatasetPreset", "DATASET_PRESETS", "get_preset", "scaled_preset"]


@dataclass(frozen=True)
class DatasetPreset:
    """Statistics describing one of the paper's evaluation datasets.

    Attributes
    ----------
    name:
        Canonical dataset name (``"ml-100k"``, ``"ml-1m"``, ``"steam-200k"``).
    num_users, num_items, num_interactions:
        Sizes from Table II of the paper.
    popularity_exponent:
        Zipf-like exponent of the item-popularity distribution used by the
        synthetic generator (larger = more skewed).
    activity_sigma:
        Log-normal sigma of the per-user activity distribution.
    scenario:
        ``"movie"`` or ``"game"`` — the two scenarios of the paper.
    """

    name: str
    num_users: int
    num_items: int
    num_interactions: int
    popularity_exponent: float
    activity_sigma: float
    scenario: str

    @property
    def sparsity(self) -> float:
        """Fraction of the interaction matrix that is empty."""
        return 1.0 - self.num_interactions / (self.num_users * self.num_items)

    @property
    def average_interactions_per_user(self) -> float:
        """Average interactions per user (the "Avg." column of Table II)."""
        return self.num_interactions / self.num_users


#: Presets mirroring Table II.  MovieLens-100K: 943 users / 1,682 items /
#: 100,000 interactions; MovieLens-1M: 6,040 / 3,706 / 1,000,209;
#: Steam-200K: 3,753 / 5,134 / 114,713.
DATASET_PRESETS: dict[str, DatasetPreset] = {
    "ml-100k": DatasetPreset(
        name="ml-100k",
        num_users=943,
        num_items=1682,
        num_interactions=100_000,
        popularity_exponent=0.9,
        activity_sigma=0.9,
        scenario="movie",
    ),
    "ml-1m": DatasetPreset(
        name="ml-1m",
        num_users=6040,
        num_items=3706,
        num_interactions=1_000_209,
        popularity_exponent=0.95,
        activity_sigma=0.95,
        scenario="movie",
    ),
    "steam-200k": DatasetPreset(
        name="steam-200k",
        num_users=3753,
        num_items=5134,
        num_interactions=114_713,
        popularity_exponent=1.1,
        activity_sigma=1.1,
        scenario="game",
    ),
    # ------------------------------------------------------------------ #
    # Benchmark-calibrated miniatures.  These are *not* uniform rescalings:
    # the number of users (and therefore the number of malicious clients a
    # given rho buys) and the per-user activity are chosen so that the
    # attack-vs-training balance of the paper-scale experiments — baselines
    # ~0, FedRecAttack rising steeply with rho and saturating by 5-10%,
    # negligible HR@10 impact, sparser datasets easier to attack — is
    # preserved at a size that trains in a couple of seconds.  They keep the
    # relative ordering of the three datasets (ml-1m densest, steam-200k
    # sparsest) and their popularity/activity skew.
    # ------------------------------------------------------------------ #
    "ml-100k-mini": DatasetPreset(
        name="ml-100k-mini",
        num_users=320,
        num_items=650,
        num_interactions=320 * 24,
        popularity_exponent=0.9,
        activity_sigma=0.9,
        scenario="movie",
    ),
    "ml-1m-mini": DatasetPreset(
        name="ml-1m-mini",
        num_users=480,
        num_items=750,
        num_interactions=480 * 35,
        popularity_exponent=0.95,
        activity_sigma=0.95,
        scenario="movie",
    ),
    "steam-200k-mini": DatasetPreset(
        name="steam-200k-mini",
        num_users=320,
        num_items=1000,
        num_interactions=320 * 12,
        popularity_exponent=1.1,
        activity_sigma=1.1,
        scenario="game",
    ),
    # ------------------------------------------------------------------ #
    # Scaling-benchmark shape.  Mirrors the MovieLens-10M dimensions
    # (69,878 users / 10,677 items / ~10M interactions) so the sharded
    # round-engine benchmark measures worker scaling at a realistic
    # users-times-items footprint.  Synthetic like every other preset;
    # intended for ``benchmarks/test_perf_engine.py`` (usually heavily
    # down-scaled via ``scaled_preset``), not for reproducing any table.
    # ------------------------------------------------------------------ #
    "ml-10m-shape": DatasetPreset(
        name="ml-10m-shape",
        num_users=69_878,
        num_items=10_677,
        num_interactions=10_000_054,
        popularity_exponent=0.95,
        activity_sigma=0.95,
        scenario="movie",
    ),
}


def get_preset(name: str) -> DatasetPreset:
    """Look up a preset by name (case-insensitive)."""
    key = name.lower()
    if key not in DATASET_PRESETS:
        known = ", ".join(sorted(DATASET_PRESETS))
        raise ConfigurationError(f"unknown dataset preset {name!r}; known presets: {known}")
    return DATASET_PRESETS[key]


def scaled_preset(name: str, scale: float) -> DatasetPreset:
    """Return a preset scaled down by ``scale`` while preserving its shape.

    The number of users shrinks by ``scale`` and the number of items by
    ``sqrt(scale)``, while the *average number of interactions per user* is
    preserved.  Preserving per-user activity matters for fidelity: it keeps
    the public-interaction coverage at a given ``xi`` and the per-upload
    non-zero-row counts (which ``kappa`` constrains) comparable to the
    original datasets.  Lower bounds keep the scaled dataset usable.
    """
    if not 0.0 < scale <= 1.0:
        raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
    preset = get_preset(name)
    if scale == 1.0:
        return preset
    num_users = max(40, int(round(preset.num_users * scale)))
    num_items = max(80, int(round(preset.num_items * math.sqrt(scale))))
    average = preset.average_interactions_per_user
    average = min(average, num_items * 0.5)
    num_interactions = max(5 * num_users, int(round(average * num_users)))
    num_interactions = min(num_interactions, num_users * num_items // 2)
    return replace(
        preset,
        name=f"{preset.name}-x{scale:g}",
        num_users=num_users,
        num_items=num_items,
        num_interactions=num_interactions,
    )
