"""Dataset statistics — reproduces Table II of the paper.

Table II reports, for each dataset, the number of users, items and
interactions, the average number of interactions per user, and the sparsity
of the interaction matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import InteractionDataset

__all__ = ["DatasetStatistics", "compute_statistics", "statistics_table"]


@dataclass(frozen=True)
class DatasetStatistics:
    """One row of Table II."""

    name: str
    num_users: int
    num_items: int
    num_interactions: int
    average_interactions_per_user: float
    sparsity: float

    def as_row(self) -> list[str]:
        """Format the statistics as the strings of a table row."""
        return [
            self.name,
            f"{self.num_users:,}",
            f"{self.num_items:,}",
            f"{self.num_interactions:,}",
            f"{self.average_interactions_per_user:.0f}",
            f"{self.sparsity * 100:.2f}%",
        ]


def compute_statistics(dataset: InteractionDataset) -> DatasetStatistics:
    """Compute the Table II statistics for ``dataset``."""
    return DatasetStatistics(
        name=dataset.name,
        num_users=dataset.num_users,
        num_items=dataset.num_items,
        num_interactions=dataset.num_interactions,
        average_interactions_per_user=dataset.average_interactions_per_user,
        sparsity=dataset.sparsity,
    )


def statistics_table(datasets: list[InteractionDataset]) -> str:
    """Render Table II for the given datasets as fixed-width text."""
    header = ["Dataset", "#users", "#items", "#interactions", "Avg.", "Sparsity"]
    rows = [compute_statistics(dataset).as_row() for dataset in datasets]
    widths = [
        max(len(header[col]), *(len(row[col]) for row in rows)) if rows else len(header[col])
        for col in range(len(header))
    ]
    lines = [
        "  ".join(header[col].ljust(widths[col]) for col in range(len(header))),
        "  ".join("-" * widths[col] for col in range(len(header))),
    ]
    for row in rows:
        lines.append("  ".join(row[col].ljust(widths[col]) for col in range(len(header))))
    return "\n".join(lines)


def popularity_skew(dataset: InteractionDataset) -> float:
    """Gini coefficient of the item-popularity distribution.

    Not part of Table II but useful for checking that a synthetic dataset
    reproduces the long-tail shape of the real one.
    """
    counts = np.sort(dataset.item_popularity.astype(np.float64))
    total = counts.sum()
    if total == 0:
        return 0.0
    n = counts.shape[0]
    cumulative = np.cumsum(counts)
    return float((n + 1 - 2 * np.sum(cumulative) / total) / n)
