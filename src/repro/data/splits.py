"""Leave-one-out train/test splitting.

The paper evaluates with the leave-one-out protocol (Section V-A): for every
user one interaction is held out as the test item and the rest form the
training set.  Users with a single interaction keep it in training and have
no test item.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.exceptions import DataError
from repro.rng import ensure_rng

__all__ = ["TrainTestSplit", "leave_one_out_split"]


@dataclass(frozen=True)
class TrainTestSplit:
    """A leave-one-out split of an :class:`InteractionDataset`.

    Attributes
    ----------
    train:
        The training interactions (everything except the held-out items).
    test_items:
        Array of length ``num_users``; ``test_items[u]`` is the held-out item
        of user ``u`` or ``-1`` when the user has no test item.
    full:
        The original, unsplit dataset.
    """

    train: InteractionDataset
    test_items: np.ndarray
    full: InteractionDataset = field(repr=False)

    @property
    def num_test_users(self) -> int:
        """Number of users that have a held-out test item."""
        return int(np.sum(self.test_items >= 0))

    def test_pairs(self) -> np.ndarray:
        """The held-out interactions as an ``(N, 2)`` array."""
        users = np.flatnonzero(self.test_items >= 0)
        return np.column_stack([users, self.test_items[users]])


def leave_one_out_split(
    dataset: InteractionDataset,
    rng: np.random.Generator | int | None = None,
    min_train_interactions: int = 1,
) -> TrainTestSplit:
    """Split ``dataset`` with the leave-one-out protocol.

    Parameters
    ----------
    dataset:
        The full interaction dataset.
    rng:
        Randomness used to pick the held-out item of each user.  The
        conventional choice is the most recent interaction; without timestamps
        in the synthetic substrate we pick uniformly at random, which is the
        standard fallback.
    min_train_interactions:
        A user only contributes a test item if at least this many
        interactions remain in its training profile afterwards.
    """
    if min_train_interactions < 1:
        raise DataError("min_train_interactions must be at least 1")
    generator = ensure_rng(rng)
    test_items = np.full(dataset.num_users, -1, dtype=np.int64)
    removals: list[tuple[int, int]] = []
    for user in dataset.iter_users():
        items = dataset.positive_items(user)
        if items.shape[0] <= min_train_interactions:
            continue
        held_out = int(generator.choice(items))
        test_items[user] = held_out
        removals.append((user, held_out))
    train = dataset.with_interactions_removed(removals, name=f"{dataset.name}-train")
    return TrainTestSplit(train=train, test_items=test_items, full=dataset)
