"""Implicit-feedback interaction dataset.

The paper works with implicit feedback: the training data ``D`` is a set of
(user, item) pairs and, for each user ``u_i``, ``V+_i`` is the set of items
the user interacted with and ``V-_i`` the complement (Section III-A).
:class:`InteractionDataset` stores exactly that, with fast per-user access
and the aggregate views (popularity counts, interaction matrix) the attacks
and baselines need.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np
from scipy import sparse

from repro.exceptions import DataError

if TYPE_CHECKING:
    from repro.data.store import InteractionStore

__all__ = ["InteractionDataset"]


class InteractionDataset:
    """A set of implicit user-item interactions.

    Parameters
    ----------
    num_users:
        Number of users ``n``; user ids are ``0 .. n-1``.
    num_items:
        Number of items ``m``; item ids are ``0 .. m-1``.
    interactions:
        Array-like of shape ``(N, 2)`` with ``(user, item)`` pairs.
        Duplicates are dropped (the paper drops duplicate interactions during
        preprocessing).
    name:
        Human-readable dataset name, e.g. ``"ml-100k"``.
    """

    def __init__(
        self,
        num_users: int,
        num_items: int,
        interactions: Iterable[tuple[int, int]] | np.ndarray,
        name: str = "dataset",
    ) -> None:
        if num_users <= 0 or num_items <= 0:
            raise DataError(
                f"num_users and num_items must be positive, got {num_users} and {num_items}"
            )
        pairs = np.asarray(list(interactions) if not isinstance(interactions, np.ndarray) else interactions)
        if pairs.size == 0:
            pairs = np.empty((0, 2), dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise DataError(f"interactions must have shape (N, 2), got {pairs.shape}")
        pairs = pairs.astype(np.int64, copy=False)
        if pairs.shape[0] > 0:
            if pairs[:, 0].min() < 0 or pairs[:, 0].max() >= num_users:
                raise DataError("user id out of range")
            if pairs[:, 1].min() < 0 or pairs[:, 1].max() >= num_items:
                raise DataError("item id out of range")
        pairs = np.unique(pairs, axis=0)

        self._name = name
        self._num_users = int(num_users)
        self._num_items = int(num_items)
        self._pairs = pairs
        self._user_items: list[np.ndarray] = self._group_by_user(pairs, num_users)
        self._item_popularity = np.bincount(pairs[:, 1], minlength=num_items).astype(np.int64)
        self._store = None

    @staticmethod
    def _group_by_user(pairs: np.ndarray, num_users: int) -> list[np.ndarray]:
        grouped: list[np.ndarray] = [np.empty(0, dtype=np.int64) for _ in range(num_users)]
        if pairs.shape[0] == 0:
            return grouped
        order = np.argsort(pairs[:, 0], kind="stable")
        sorted_pairs = pairs[order]
        users, starts = np.unique(sorted_pairs[:, 0], return_index=True)
        boundaries = np.append(starts, sorted_pairs.shape[0])
        for idx, user in enumerate(users):
            grouped[int(user)] = np.sort(sorted_pairs[boundaries[idx] : boundaries[idx + 1], 1])
        return grouped

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Dataset name."""
        return self._name

    @property
    def num_users(self) -> int:
        """Number of users ``n``."""
        return self._num_users

    @property
    def num_items(self) -> int:
        """Number of items ``m``."""
        return self._num_items

    @property
    def num_interactions(self) -> int:
        """Number of distinct (user, item) interactions ``|D|``."""
        return int(self._pairs.shape[0])

    @property
    def pairs(self) -> np.ndarray:
        """All interactions as an ``(N, 2)`` array of ``(user, item)`` pairs."""
        return self._pairs

    @property
    def item_popularity(self) -> np.ndarray:
        """Interaction count per item, shape ``(num_items,)``."""
        return self._item_popularity

    @property
    def sparsity(self) -> float:
        """Fraction of the user-item matrix that is empty (Table II)."""
        total = self._num_users * self._num_items
        return 1.0 - self.num_interactions / total

    @property
    def average_interactions_per_user(self) -> float:
        """Average number of interactions per user (Table II, "Avg.")."""
        return self.num_interactions / self._num_users

    # ------------------------------------------------------------------ #
    # Per-user access
    # ------------------------------------------------------------------ #
    def positive_items(self, user: int) -> np.ndarray:
        """Items the user interacted with, i.e. ``V+_i`` (sorted)."""
        self._check_user(user)
        return self._user_items[user]

    def user_degree(self, user: int) -> int:
        """Number of interactions of ``user``."""
        return int(self.positive_items(user).shape[0])

    def user_degrees(self) -> np.ndarray:
        """Number of interactions of every user, shape ``(num_users,)``."""
        return np.array([items.shape[0] for items in self._user_items], dtype=np.int64)

    def has_interaction(self, user: int, item: int) -> bool:
        """Whether ``(user, item)`` is in the dataset."""
        self._check_user(user)
        if item < 0 or item >= self._num_items:
            raise DataError(f"item id {item} out of range [0, {self._num_items})")
        items = self._user_items[user]
        idx = np.searchsorted(items, item)
        return bool(idx < items.shape[0] and items[idx] == item)

    def positive_mask(self, user: int) -> np.ndarray:
        """Boolean mask over items, True at the user's interacted items."""
        mask = np.zeros(self._num_items, dtype=bool)
        mask[self.positive_items(user)] = True
        return mask

    def iter_users(self) -> Iterator[int]:
        """Iterate over all user ids."""
        return iter(range(self._num_users))

    # ------------------------------------------------------------------ #
    # Aggregate views
    # ------------------------------------------------------------------ #
    def to_csr(self) -> sparse.csr_matrix:
        """The binary interaction matrix as a ``num_users x num_items`` CSR."""
        data = np.ones(self.num_interactions, dtype=np.float64)
        return sparse.csr_matrix(
            (data, (self._pairs[:, 0], self._pairs[:, 1])),
            shape=(self._num_users, self._num_items),
        )

    def interaction_store(self) -> InteractionStore:
        """The shared :class:`~repro.data.store.InteractionStore` of this dataset.

        Built on first access and cached, so the batched negative sampler,
        the attacker's user-matrix approximation and the evaluation engine
        all see the same CSR indices and mask rows (the dataset is immutable,
        which is what makes the cache safe).
        """
        if self._store is None:
            from repro.data.store import InteractionStore  # local import avoids a cycle

            self._store = InteractionStore.from_dataset(self)
        return self._store

    def popular_items(self, top_fraction: float = 0.1) -> np.ndarray:
        """Ids of the most-interacted items (top ``top_fraction`` of items).

        The Bandwagon baseline defines "popular items" as the top 10% of
        items by interaction count (Section V-A).
        """
        if not 0.0 < top_fraction <= 1.0:
            raise DataError(f"top_fraction must be in (0, 1], got {top_fraction}")
        count = max(1, int(round(top_fraction * self._num_items)))
        order = np.argsort(-self._item_popularity, kind="stable")
        return order[:count]

    def unpopular_items(self, count: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Sample ``count`` items from the least-popular half of the catalogue.

        Attack papers conventionally pick cold / unpopular items as targets so
        that ``ER@K`` starts at zero; this helper mirrors that choice.
        """
        if count <= 0:
            raise DataError(f"count must be positive, got {count}")
        if count > self._num_items:
            raise DataError("cannot sample more target items than items exist")
        order = np.argsort(self._item_popularity, kind="stable")
        pool = order[: max(count, self._num_items // 2)]
        if rng is None:
            return pool[:count]
        return rng.choice(pool, size=count, replace=False)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def with_interactions_removed(
        self, removals: Sequence[tuple[int, int]], name: str | None = None
    ) -> "InteractionDataset":
        """Return a copy with the given (user, item) pairs removed."""
        removal_set = {(int(u), int(i)) for u, i in removals}
        kept = [
            (int(u), int(i))
            for u, i in self._pairs
            if (int(u), int(i)) not in removal_set
        ]
        return InteractionDataset(
            self._num_users, self._num_items, np.array(kept, dtype=np.int64).reshape(-1, 2),
            name=name or self._name,
        )

    def with_extra_users(self, extra_profiles: Sequence[np.ndarray], name: str | None = None) -> "InteractionDataset":
        """Return a copy with additional users appended (fake-profile injection).

        Each entry of ``extra_profiles`` is an array of item ids forming the
        interaction profile of one new user.  Used by the centralized
        data-poisoning baselines (P1/P2) which inject fake users.
        """
        pairs = [self._pairs]
        for offset, profile in enumerate(extra_profiles):
            user_id = self._num_users + offset
            profile = np.asarray(profile, dtype=np.int64)
            pairs.append(np.column_stack([np.full(profile.shape[0], user_id), profile]))
        merged = np.concatenate(pairs, axis=0) if pairs else self._pairs
        return InteractionDataset(
            self._num_users + len(extra_profiles),
            self._num_items,
            merged,
            name=name or self._name,
        )

    def _check_user(self, user: int) -> None:
        if user < 0 or user >= self._num_users:
            raise DataError(f"user id {user} out of range [0, {self._num_users})")

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.num_interactions

    def __repr__(self) -> str:
        return (
            f"InteractionDataset(name={self._name!r}, users={self._num_users}, "
            f"items={self._num_items}, interactions={self.num_interactions}, "
            f"sparsity={self.sparsity:.4f})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InteractionDataset):
            return NotImplemented
        return (
            self._num_users == other._num_users
            and self._num_items == other._num_items
            and np.array_equal(self._pairs, other._pairs)
        )
