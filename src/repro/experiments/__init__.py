"""Experiment harness.

Turns a declarative :class:`~repro.experiments.config.ExperimentConfig` into
a full federated-training run (dataset -> split -> public interactions ->
attack -> simulation -> metrics), and provides one generator per table and
figure of the paper's evaluation section.
"""

from repro.experiments.config import ExperimentConfig, ExperimentProfile, BENCH_PROFILE, PAPER_PROFILE
from repro.experiments.registry import available_attacks, build_attack
from repro.experiments.reporting import TableResult, format_table
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.tables import (
    defense_table,
    detection_table,
    table2_dataset_sizes,
    table3_xi_sweep,
    table4_rho_sweep,
    table5_kappa_sweep,
    table6_data_poisoning,
    table7_effectiveness,
    table8_model_poisoning,
    table9_ablation,
)
from repro.experiments.figures import FigureResult, figure3_side_effects

__all__ = [
    "ExperimentConfig",
    "ExperimentProfile",
    "BENCH_PROFILE",
    "PAPER_PROFILE",
    "ExperimentResult",
    "run_experiment",
    "build_attack",
    "available_attacks",
    "TableResult",
    "format_table",
    "table2_dataset_sizes",
    "table3_xi_sweep",
    "table4_rho_sweep",
    "table5_kappa_sweep",
    "table6_data_poisoning",
    "table7_effectiveness",
    "table8_model_poisoning",
    "table9_ablation",
    "defense_table",
    "detection_table",
    "FigureResult",
    "figure3_side_effects",
]
