"""Figure generators.

Figure 3 of the paper plots, for each dataset, the training loss and HR@10 of
every epoch for the clean run ("None") and for FedRecAttack with malicious
proportions of 3%, 5% and 10%.  :func:`figure3_side_effects` regenerates
those series; :class:`FigureResult` keeps the raw arrays and can render a
plain-text summary (this library deliberately avoids a plotting dependency —
the arrays can be fed to any plotting tool).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.config import BENCH_PROFILE, ExperimentConfig, ExperimentProfile
from repro.experiments.runner import run_experiment

__all__ = ["FigureResult", "figure3_side_effects"]


@dataclass
class FigureResult:
    """Per-epoch series for one figure.

    ``series`` maps a curve label (e.g. ``"None"`` or ``"rho=5%"``) to a
    dictionary with ``"epochs"``, ``"training_loss"``, ``"eval_epochs"`` and
    ``"hr_at_10"`` arrays.
    """

    title: str
    series: dict[str, dict[str, np.ndarray]] = field(default_factory=dict)

    def labels(self) -> list[str]:
        """Curve labels in insertion order."""
        return list(self.series)

    def final_hr_at_10(self, label: str) -> float:
        """Last HR@10 value of the given curve."""
        values = self.series[label]["hr_at_10"]
        return float(values[-1]) if values.shape[0] else 0.0

    def final_training_loss(self, label: str) -> float:
        """Last training-loss value of the given curve."""
        values = self.series[label]["training_loss"]
        return float(values[-1]) if values.shape[0] else 0.0

    def to_text(self) -> str:
        """Compact text summary of the curves (first / last values)."""
        lines = [self.title]
        for label, data in self.series.items():
            loss = data["training_loss"]
            hr = data["hr_at_10"]
            lines.append(
                f"  {label:<12} loss {loss[0]:.2f} -> {loss[-1]:.2f}   "
                f"HR@10 {hr[0]:.4f} -> {hr[-1]:.4f}"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()


def figure3_side_effects(
    profile: ExperimentProfile = BENCH_PROFILE,
    dataset: str = "ml-100k",
    rhos: tuple[float, ...] = (0.03, 0.05, 0.10),
    evaluations: int = 6,
) -> FigureResult:
    """Regenerate Figure 3: training loss and HR@10 per epoch, clean vs attacked.

    Parameters
    ----------
    profile:
        Scale profile of the runs.
    dataset:
        Which of the three datasets to plot (the paper shows all three; the
        benchmark regenerates one panel per invocation).
    rhos:
        Malicious-user proportions of the attacked curves.
    evaluations:
        Number of HR@10 evaluation points along the run.
    """
    result = FigureResult(title=f"Figure 3: side effects of FedRecAttack on {dataset}")
    evaluate_every = max(1, profile.num_epochs // max(1, evaluations))

    configurations: list[tuple[str, ExperimentConfig]] = [
        (
            "None",
            profile.apply(
                ExperimentConfig(
                    dataset=dataset, attack="none", rho=0.0, evaluate_every=evaluate_every
                )
            ),
        )
    ]
    for rho in rhos:
        configurations.append(
            (
                f"rho={rho:.0%}",
                profile.apply(
                    ExperimentConfig(
                        dataset=dataset,
                        attack="fedrecattack",
                        rho=rho,
                        evaluate_every=evaluate_every,
                    )
                ),
            )
        )

    for label, config in configurations:
        outcome = run_experiment(config)
        history = outcome.history
        result.series[label] = {
            "epochs": history.epochs(),
            "training_loss": history.training_loss(),
            "eval_epochs": history.evaluated_epochs(),
            "hr_at_10": history.hr_at_10(),
        }
    return result
