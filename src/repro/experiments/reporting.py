"""Result tables rendered as fixed-width text.

Every table generator returns a :class:`TableResult`, which keeps both the
raw structured values (for programmatic assertions in the test/benchmark
suite) and a formatted text rendering mirroring the corresponding table in
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["TableResult", "format_table"]


def format_table(headers: list[str], rows: list[list[str]], title: str | None = None) -> str:
    """Render ``headers``/``rows`` as fixed-width, column-aligned text."""
    columns = len(headers)
    normalised_rows = [[str(cell) for cell in row] + [""] * (columns - len(row)) for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in normalised_rows)) if normalised_rows else len(headers[col])
        for col in range(columns)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(headers[col].ljust(widths[col]) for col in range(columns)))
    lines.append("  ".join("-" * widths[col] for col in range(columns)))
    for row in normalised_rows:
        lines.append("  ".join(row[col].ljust(widths[col]) for col in range(columns)))
    return "\n".join(lines)


@dataclass
class TableResult:
    """A regenerated table: raw values plus a text rendering.

    Attributes
    ----------
    title:
        The table's title (e.g. ``"Table VII: effectiveness of attacks"``).
    headers:
        Column headers of the text rendering.
    rows:
        Formatted table rows (strings).
    raw:
        Structured results keyed however the specific generator documents
        (typically ``raw[row_label][column_label] -> float``), used by tests
        and benchmarks for quantitative assertions.
    """

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    raw: dict[str, Any] = field(default_factory=dict)

    def to_text(self) -> str:
        """The table rendered as fixed-width text."""
        return format_table(self.headers, self.rows, title=self.title)

    def __str__(self) -> str:
        return self.to_text()
