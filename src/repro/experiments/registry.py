"""Attack registry: build an attack instance from a configuration name.

The registry encodes which prior knowledge each attack needs: FedRecAttack
receives the public interactions, the popularity-based baselines receive
popularity side information through the attack context, and the
data-poisoning baselines (P1/P2) receive the full training data through the
context (their original, much stronger, threat model).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.attacks.base import Attack
from repro.attacks.data_poisoning import SurrogateDLDataPoisoning, SurrogateMFDataPoisoning
from repro.attacks.explicit_boost import ExplicitBoostAttack
from repro.attacks.fedrecattack import FedRecAttack, FedRecAttackConfig
from repro.attacks.model_poisoning import GradientBoostingAttack, LittleIsEnoughAttack
from repro.attacks.pipattack import PipAttack
from repro.attacks.shilling import BandwagonAttack, PopularAttack, RandomAttack
from repro.data.public import PublicInteractions
from repro.exceptions import ConfigurationError
from repro.experiments.config import ExperimentConfig

__all__ = ["build_attack", "available_attacks"]

AttackFactory = Callable[[ExperimentConfig, PublicInteractions], Attack]


def _fedrecattack(config: ExperimentConfig, public: PublicInteractions) -> Attack:
    attack_config = FedRecAttackConfig(
        kappa=config.kappa,
        step_size=config.zeta,
        clip_norm=config.clip_norm,
        **config.attack_options,
    )
    return FedRecAttack(public, attack_config)


def _random(config: ExperimentConfig, public: PublicInteractions) -> Attack:
    return RandomAttack(kappa=config.kappa)


def _bandwagon(config: ExperimentConfig, public: PublicInteractions) -> Attack:
    return BandwagonAttack(kappa=config.kappa)


def _popular(config: ExperimentConfig, public: PublicInteractions) -> Attack:
    return PopularAttack(kappa=config.kappa)


def _explicit_boost(config: ExperimentConfig, public: PublicInteractions) -> Attack:
    return ExplicitBoostAttack(clip_norm=config.clip_norm, **config.attack_options)


def _pipattack(config: ExperimentConfig, public: PublicInteractions) -> Attack:
    return PipAttack(clip_norm=config.clip_norm, **config.attack_options)


def _p3(config: ExperimentConfig, public: PublicInteractions) -> Attack:
    return GradientBoostingAttack(clip_norm=config.clip_norm, **config.attack_options)


def _p4(config: ExperimentConfig, public: PublicInteractions) -> Attack:
    return LittleIsEnoughAttack(clip_norm=config.clip_norm, **config.attack_options)


def _p1(config: ExperimentConfig, public: PublicInteractions) -> Attack:
    return SurrogateMFDataPoisoning(kappa=config.kappa, **config.attack_options)


def _p2(config: ExperimentConfig, public: PublicInteractions) -> Attack:
    return SurrogateDLDataPoisoning(kappa=config.kappa, **config.attack_options)


_REGISTRY: dict[str, AttackFactory] = {
    "fedrecattack": _fedrecattack,
    "random": _random,
    "bandwagon": _bandwagon,
    "popular": _popular,
    "eb": _explicit_boost,
    "pipattack": _pipattack,
    "p3": _p3,
    "p4": _p4,
    "p1": _p1,
    "p2": _p2,
}


def available_attacks() -> list[str]:
    """Names accepted by :func:`build_attack` (plus ``"none"``)."""
    return ["none"] + sorted(_REGISTRY)


def build_attack(config: ExperimentConfig, public: PublicInteractions) -> Attack | None:
    """Instantiate the attack named in ``config`` (``None`` for a clean run)."""
    name = config.attack.lower()
    if name == "none":
        return None
    if name not in _REGISTRY:
        known = ", ".join(available_attacks())
        raise ConfigurationError(f"unknown attack {config.attack!r}; known attacks: {known}")
    return _REGISTRY[name](config, public)
