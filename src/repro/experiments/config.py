"""Experiment configuration.

Two layers of configuration are used throughout the harness:

* :class:`ExperimentConfig` fully describes one federated-training run —
  which dataset, which attack, the attack knobs (``xi``, ``rho``, ``kappa``,
  ``C``, ``zeta``) and the recommender hyper-parameters.  Its defaults are
  the paper's defaults (Section V-A).
* :class:`ExperimentProfile` describes the *scale* at which a whole table or
  figure is regenerated: the paper-scale profile keeps the full datasets and
  200 epochs, while the benchmark profile shrinks the datasets and epoch
  count so that every table can be regenerated in minutes on a laptop while
  preserving the qualitative shape of the results.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any

from repro.exceptions import ConfigurationError
from repro.federated.config import FederatedConfig
from repro.federated.switches import SWITCH_REGISTRY

__all__ = ["ExperimentConfig", "ExperimentProfile", "PAPER_PROFILE", "BENCH_PROFILE"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Declarative description of one federated-training run.

    Attributes follow the paper's notation: ``xi`` is the public-interaction
    proportion, ``rho`` the malicious-user proportion, ``kappa`` the maximum
    number of non-zero uploaded gradient rows, ``clip_norm`` the per-row L2
    bound ``C`` and ``zeta`` the attack step size.
    """

    dataset: str = "ml-100k"
    scale: float = 1.0
    data_dir: str | None = None
    attack: str = "fedrecattack"
    xi: float = 0.01
    rho: float = 0.05
    kappa: int = 60
    clip_norm: float = 1.0
    zeta: float = 1.0
    num_target_items: int = 1
    target_strategy: str = "unpopular"
    num_factors: int = 32
    learning_rate: float = 0.01
    num_epochs: int = 200
    clients_per_round: int = 256
    noise_scale: float = 0.0
    l2_reg: float = 0.0
    aggregator: str = "sum"
    aggregator_options: dict[str, Any] = field(default_factory=dict)
    engine: str = "vectorized"
    sampler: str = "permutation"
    eval_engine: str = "vectorized"
    eval_sampler: str = "per-user"
    eval_path: str = "block"
    fuse_rounds: int = 1
    workers: int = 1
    worker_timeout: float | None = None
    dropout_rate: float = 0.0
    crash_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_policy: str = "wait"
    min_reporters: int = 0
    shard_retries: int = 0
    shard_backoff: float = 0.05
    degradation: str = "strict"
    use_learnable_scorer: bool = False
    scorer_hidden_units: int = 32
    evaluate_every: int | None = None
    eval_num_negatives: int | None = 99
    seed: int = 0
    attack_options: dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent settings."""
        if not 0.0 <= self.xi <= 1.0:
            raise ConfigurationError("xi must be in [0, 1]")
        if not 0.0 <= self.rho <= 1.0:
            raise ConfigurationError("rho must be in [0, 1]")
        if self.kappa <= 0:
            raise ConfigurationError("kappa must be positive")
        if self.clip_norm <= 0:
            raise ConfigurationError("clip_norm must be positive")
        if self.zeta <= 0:
            raise ConfigurationError("zeta must be positive")
        if self.num_target_items <= 0:
            raise ConfigurationError("num_target_items must be positive")
        if not 0.0 < self.scale <= 1.0:
            raise ConfigurationError("scale must be in (0, 1]")
        if self.attack.lower() != "none" and self.rho == 0.0:
            raise ConfigurationError("an attack requires rho > 0")
        self.to_federated_config().validate()

    def to_federated_config(self) -> FederatedConfig:
        """The federated-protocol configuration implied by this experiment.

        The engine switches are forwarded generically from the declarative
        registry (:data:`~repro.federated.switches.SWITCH_REGISTRY`), so a
        new switch added there flows through without touching this method.
        """
        switches = {spec.name: getattr(self, spec.name) for spec in SWITCH_REGISTRY}
        return FederatedConfig(
            num_factors=self.num_factors,
            learning_rate=self.learning_rate,
            clients_per_round=self.clients_per_round,
            num_epochs=self.num_epochs,
            noise_scale=self.noise_scale,
            clip_norm=self.clip_norm,
            l2_reg=self.l2_reg,
            aggregator=self.aggregator,
            aggregator_options=dict(self.aggregator_options),
            use_learnable_scorer=self.use_learnable_scorer,
            scorer_hidden_units=self.scorer_hidden_units,
            **switches,
        )

    def with_overrides(self, **kwargs: Any) -> "ExperimentConfig":
        """A copy of this configuration with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class ExperimentProfile:
    """Scale at which the tables/figures are regenerated.

    ``dataset_aliases`` optionally replaces a dataset by a calibrated
    miniature preset (used by the benchmark profile), ``dataset_scales`` maps
    each dataset to a uniform down-scaling factor, and the remaining fields
    override the heavyweight training hyper-parameters.  ``sampler`` and
    ``fuse_rounds``, when set, override the negative-sampling engine and the
    cross-round fusion window of every run regenerated at this profile — this
    is how the qualitative table/figure gates are re-validated under the
    ``"batched"`` sampler (see ``REPRO_BENCH_SAMPLER`` below).
    """

    name: str
    num_epochs: int
    clients_per_round: int
    num_factors: int
    eval_num_negatives: int | None
    learning_rate: float = 0.01
    dataset_scales: dict[str, float] = field(default_factory=dict)
    dataset_aliases: dict[str, str] = field(default_factory=dict)
    seed: int = 0
    sampler: str | None = None
    fuse_rounds: int | None = None

    def scale_for(self, dataset: str) -> float:
        """Down-scaling factor for ``dataset`` (1.0 when not listed)."""
        return self.dataset_scales.get(dataset.lower(), 1.0)

    def dataset_for(self, dataset: str) -> str:
        """Dataset (or miniature alias) actually used for ``dataset``."""
        return self.dataset_aliases.get(dataset.lower(), dataset)

    def apply(self, config: ExperimentConfig) -> ExperimentConfig:
        """Apply this profile's scale and training overrides to ``config``."""
        overrides = dict(
            dataset=self.dataset_for(config.dataset),
            scale=self.scale_for(config.dataset),
            num_epochs=self.num_epochs,
            clients_per_round=self.clients_per_round,
            num_factors=self.num_factors,
            eval_num_negatives=self.eval_num_negatives,
            learning_rate=self.learning_rate,
            seed=self.seed,
        )
        if self.sampler is not None:
            overrides["sampler"] = self.sampler
        if self.fuse_rounds is not None:
            overrides["fuse_rounds"] = self.fuse_rounds
        return config.with_overrides(**overrides)


#: Full paper-scale settings: real dataset sizes and 200 training epochs.
PAPER_PROFILE = ExperimentProfile(
    name="paper",
    num_epochs=200,
    clients_per_round=256,
    num_factors=32,
    eval_num_negatives=99,
    learning_rate=0.01,
)

#: Laptop-scale settings used by the benchmark suite: calibrated miniature
#: datasets, fewer epochs, a higher learning rate (so the same effective
#: optimisation horizon eta * epochs is reached in far fewer rounds) and
#: smaller client batches.
#:
#: ``REPRO_BENCH_SAMPLER`` / ``REPRO_BENCH_FUSE_ROUNDS`` switch the sampler
#: engine and fusion window of the whole benchmark suite without touching the
#: tests — e.g. ``REPRO_BENCH_SAMPLER=batched pytest benchmarks/`` re-validates
#: every qualitative table/figure gate under the batched sampler's
#: realizations.  Unset, the profile pins nothing and runs keep the
#: ``ExperimentConfig`` defaults (permutation, no fusion).
def _bench_fuse_rounds_from_env() -> int | None:
    """Parse ``REPRO_BENCH_FUSE_ROUNDS``, failing with a clear error.

    Read at import time (the profile is a module-level constant), so a
    malformed value must surface as a :class:`ConfigurationError` naming the
    variable rather than a bare ``ValueError`` from deep inside an import.
    """
    raw = os.environ.get("REPRO_BENCH_FUSE_ROUNDS")
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError as error:
        raise ConfigurationError(
            f"REPRO_BENCH_FUSE_ROUNDS must be an integer, got {raw!r}"
        ) from error


BENCH_PROFILE = ExperimentProfile(
    name="bench",
    num_epochs=35,
    clients_per_round=64,
    num_factors=16,
    eval_num_negatives=49,
    learning_rate=0.03,
    dataset_aliases={
        "ml-100k": "ml-100k-mini",
        "ml-1m": "ml-1m-mini",
        "steam-200k": "steam-200k-mini",
    },
    sampler=os.environ.get("REPRO_BENCH_SAMPLER") or None,
    fuse_rounds=_bench_fuse_rounds_from_env(),
)
