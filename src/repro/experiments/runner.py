"""Single-experiment runner.

``run_experiment`` turns an :class:`ExperimentConfig` into numbers: it loads
(or synthesises) the dataset, makes the leave-one-out split, exposes the
public interactions, selects target items, builds the attack and the
federated simulation, trains, and returns the final exposure and accuracy
metrics together with the full per-epoch history.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.attacks.target_selection import select_target_items
from repro.data.loaders import load_dataset
from repro.data.public import sample_public_interactions
from repro.data.splits import leave_one_out_split
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import build_attack
from repro.federated.dynamics import RoundIncident
from repro.federated.history import TrainingHistory
from repro.federated.simulation import FederatedSimulation, UpdateObserver
from repro.metrics.accuracy import AccuracyReport
from repro.metrics.exposure import ExposureReport
from repro.rng import SeedSequenceFactory
from repro.serving.snapshot import FactorSnapshot

if TYPE_CHECKING:
    from repro.data.dataset import InteractionDataset

__all__ = ["ExperimentResult", "run_experiment"]


@dataclass
class ExperimentResult:
    """Everything measured in one experiment run."""

    config: ExperimentConfig
    exposure: ExposureReport | None
    accuracy: AccuracyReport | None
    history: TrainingHistory
    target_items: np.ndarray
    num_malicious: int
    #: Training split used by the run — the masking source when the trained
    #: factors are put behind a :class:`~repro.serving.service.RecommenderService`.
    train: "InteractionDataset | None" = None
    #: Immutable export of the final trained factors, ready to serve
    #: (``fedrecattack serve`` hands it straight to the service).
    snapshot: FactorSnapshot | None = None

    @property
    def incidents(self) -> "list[RoundIncident]":
        """The run's structured degradation log (empty with dynamics off)."""
        return self.history.incidents

    @property
    def er_at_5(self) -> float:
        """Final ER@5 (0 when no exposure evaluation was configured)."""
        return self.exposure.er_at_5 if self.exposure else 0.0

    @property
    def er_at_10(self) -> float:
        """Final ER@10."""
        return self.exposure.er_at_10 if self.exposure else 0.0

    @property
    def target_ndcg_at_10(self) -> float:
        """Final NDCG@10 of the target items."""
        return self.exposure.ndcg_at_10 if self.exposure else 0.0

    @property
    def hr_at_10(self) -> float:
        """Final HR@10 of the held-out items."""
        return self.accuracy.hr_at_10 if self.accuracy else 0.0


def run_experiment(
    config: ExperimentConfig, update_observer: UpdateObserver | None = None
) -> ExperimentResult:
    """Run one federated-training experiment described by ``config``.

    This is the high-level "config in, numbers out" entry point used by the
    CLI and every table/figure generator.  The pipeline is: load or
    synthesise the dataset (``config.dataset`` / ``config.scale`` /
    ``config.data_dir``), make the leave-one-out split, expose the public
    fraction ``xi`` to the attacker, select the target items, build the
    attack named by ``config.attack`` with ``rho * num_users`` malicious
    clients, and train through
    :class:`~repro.federated.simulation.FederatedSimulation`.

    Every random decision derives from ``config.seed``, so a config value
    uniquely determines the result.

    Parameters
    ----------
    config:
        Full experiment description; see
        :class:`~repro.experiments.config.ExperimentConfig` for the knobs and
        their paper defaults.
    update_observer:
        Optional callback ``observer(round_index, updates)`` called after
        every aggregation round with the round's client updates — this is how
        the defense experiments feed gradient detectors without changing the
        protocol.

    Returns
    -------
    ExperimentResult
        Final exposure (ER@5 / ER@10 / target NDCG@10) and accuracy (HR@10)
        reports, the per-epoch history, the chosen targets and the malicious
        client count.
    """
    config.validate()
    seeds = SeedSequenceFactory(config.seed)

    dataset = load_dataset(
        config.dataset,
        data_dir=config.data_dir,
        scale=config.scale,
        rng=seeds.generator("dataset"),
    )
    split = leave_one_out_split(dataset, rng=seeds.generator("split"))
    public = sample_public_interactions(split.train, config.xi, rng=seeds.generator("public"))
    target_items = select_target_items(
        split.train,
        count=config.num_target_items,
        strategy=config.target_strategy,
        rng=seeds.generator("targets"),
    )

    attack = build_attack(config, public)
    num_malicious = 0
    if attack is not None:
        num_malicious = max(1, int(math.ceil(config.rho * split.train.num_users)))

    evaluate_every = config.evaluate_every or config.num_epochs
    simulation = FederatedSimulation(
        train=split.train,
        config=config.to_federated_config(),
        test_items=split.test_items,
        target_items=target_items,
        attack=attack,
        num_malicious=num_malicious,
        seed=seeds.child("simulation"),
        evaluate_every=evaluate_every,
        eval_num_negatives=config.eval_num_negatives,
        update_observer=update_observer,
    )
    outcome = simulation.run(config.num_epochs)

    return ExperimentResult(
        config=config,
        exposure=outcome.exposure,
        accuracy=outcome.accuracy,
        history=outcome.history,
        target_items=target_items,
        num_malicious=num_malicious,
        train=split.train,
        snapshot=FactorSnapshot.from_result(outcome),
    )
