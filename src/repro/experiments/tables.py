"""Table generators — one per table of the paper's evaluation section.

Every generator runs the required grid of experiments through
:func:`repro.experiments.runner.run_experiment` at the scale given by an
:class:`ExperimentProfile` and returns a :class:`TableResult` whose rows
mirror the corresponding table of the paper.  Benchmarks call these with the
laptop-scale profile; passing :data:`PAPER_PROFILE` reproduces the full-scale
setup.
"""

from __future__ import annotations

from typing import Any

from repro.data.loaders import load_dataset
from repro.data.stats import compute_statistics
from repro.experiments.config import BENCH_PROFILE, ExperimentConfig, ExperimentProfile
from repro.experiments.reporting import TableResult
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.federated.updates import ClientUpdate
from repro.rng import SeedSequenceFactory

__all__ = [
    "table2_dataset_sizes",
    "table3_xi_sweep",
    "table4_rho_sweep",
    "table5_kappa_sweep",
    "table6_data_poisoning",
    "table7_effectiveness",
    "table8_model_poisoning",
    "table9_ablation",
    "defense_table",
    "detection_table",
]

_ALL_DATASETS = ("ml-100k", "ml-1m", "steam-200k")


def _configure(
    profile: ExperimentProfile, dataset: str, attack: str, **overrides: Any
) -> ExperimentConfig:
    """Build an experiment configuration at the profile's scale."""
    config = ExperimentConfig(dataset=dataset, attack=attack, **overrides)
    return profile.apply(config)


def _metrics_row(result: ExperimentResult) -> dict[str, float]:
    return {
        "ER@5": result.er_at_5,
        "ER@10": result.er_at_10,
        "NDCG@10": result.target_ndcg_at_10,
    }


def _fmt(value: float) -> str:
    return f"{value:.4f}"


# --------------------------------------------------------------------- #
# Table II — dataset sizes
# --------------------------------------------------------------------- #
def table2_dataset_sizes(
    profile: ExperimentProfile = BENCH_PROFILE,
    datasets: tuple[str, ...] = _ALL_DATASETS,
) -> TableResult:
    """Regenerate Table II: sizes and sparsity of the evaluation datasets."""
    seeds = SeedSequenceFactory(profile.seed)
    headers = ["Dataset", "#users", "#items", "#interactions", "Avg.", "Sparsity"]
    rows: list[list[str]] = []
    raw: dict[str, dict[str, float]] = {}
    for name in datasets:
        dataset = load_dataset(
            profile.dataset_for(name), scale=profile.scale_for(name), rng=seeds.generator(name)
        )
        stats = compute_statistics(dataset)
        rows.append(stats.as_row())
        raw[name] = {
            "num_users": stats.num_users,
            "num_items": stats.num_items,
            "num_interactions": stats.num_interactions,
            "avg_interactions_per_user": stats.average_interactions_per_user,
            "sparsity": stats.sparsity,
        }
    return TableResult(
        title="Table II: sizes of datasets", headers=headers, rows=rows, raw=raw
    )


# --------------------------------------------------------------------- #
# Tables III-V — impact of the attacker's limitations on MovieLens-100K
# --------------------------------------------------------------------- #
def _single_parameter_sweep(
    profile: ExperimentProfile,
    title: str,
    parameter: str,
    values: tuple[float, ...],
    label: str,
    dataset: str = "ml-100k",
) -> TableResult:
    headers = ["Metric"] + [f"{label}={value}" for value in values]
    raw: dict[str, dict[str, float]] = {}
    for value in values:
        config = _configure(profile, dataset, "fedrecattack", **{parameter: value})
        result = run_experiment(config)
        raw[f"{label}={value}"] = _metrics_row(result)
    rows = [
        [metric] + [_fmt(raw[f"{label}={value}"][metric]) for value in values]
        for metric in ("ER@5", "ER@10", "NDCG@10")
    ]
    return TableResult(title=title, headers=headers, rows=rows, raw=raw)


def table3_xi_sweep(
    profile: ExperimentProfile = BENCH_PROFILE,
    xis: tuple[float, ...] = (0.01, 0.02, 0.03, 0.05, 0.10),
) -> TableResult:
    """Table III: impact of the public-interaction proportion ``xi``."""
    return _single_parameter_sweep(
        profile, "Table III: impact of xi on FedRecAttack", "xi", xis, "xi"
    )


def table4_rho_sweep(
    profile: ExperimentProfile = BENCH_PROFILE,
    rhos: tuple[float, ...] = (0.01, 0.02, 0.03, 0.05, 0.10),
) -> TableResult:
    """Table IV: impact of the malicious-user proportion ``rho``."""
    return _single_parameter_sweep(
        profile, "Table IV: impact of rho on FedRecAttack", "rho", rhos, "rho"
    )


def table5_kappa_sweep(
    profile: ExperimentProfile = BENCH_PROFILE,
    kappas: tuple[int, ...] = (20, 40, 60, 80, 100),
) -> TableResult:
    """Table V: impact of the non-zero-row limit ``kappa``."""
    return _single_parameter_sweep(
        profile, "Table V: impact of kappa on FedRecAttack", "kappa", kappas, "kappa"
    )


# --------------------------------------------------------------------- #
# Table VI — comparison with data-poisoning attacks (MovieLens-100K)
# --------------------------------------------------------------------- #
def table6_data_poisoning(
    profile: ExperimentProfile = BENCH_PROFILE,
    rhos: tuple[float, ...] = (0.005, 0.01, 0.03, 0.05),
    attacks: tuple[str, ...] = ("none", "p1", "p2", "fedrecattack"),
) -> TableResult:
    """Table VI: ER@10 of FedRecAttack vs data-poisoning baselines."""
    headers = ["Attack"] + [f"rho={rho:.1%}" for rho in rhos]
    rows: list[list[str]] = []
    raw: dict[str, dict[str, float]] = {}
    for attack in attacks:
        raw[attack] = {}
        row = [_display_name(attack)]
        for rho in rhos:
            if attack == "none":
                config = _configure(profile, "ml-100k", attack, rho=0.0)
            else:
                config = _configure(profile, "ml-100k", attack, rho=rho)
            result = run_experiment(config)
            raw[attack][f"rho={rho}"] = result.er_at_10
            row.append(_fmt(result.er_at_10))
        rows.append(row)
    return TableResult(
        title="Table VI: ER@10 of FedRecAttack and data poisoning attacks (MovieLens-100K)",
        headers=headers,
        rows=rows,
        raw=raw,
    )


# --------------------------------------------------------------------- #
# Table VII — effectiveness of attacks on all three datasets
# --------------------------------------------------------------------- #
def table7_effectiveness(
    profile: ExperimentProfile = BENCH_PROFILE,
    datasets: tuple[str, ...] = _ALL_DATASETS,
    attacks: tuple[str, ...] = ("none", "random", "bandwagon", "popular", "fedrecattack"),
    rhos: tuple[float, ...] = (0.03, 0.05, 0.10),
) -> TableResult:
    """Table VII: ER@5 / ER@10 / NDCG@10 of every attack on every dataset."""
    headers = ["Dataset", "Attack"]
    for rho in rhos:
        for metric in ("ER@5", "ER@10", "NDCG@10"):
            headers.append(f"{metric} (rho={rho:.0%})")
    rows: list[list[str]] = []
    raw: dict[str, dict[str, dict[str, dict[str, float]]]] = {}
    for dataset in datasets:
        raw[dataset] = {}
        for attack in attacks:
            raw[dataset][attack] = {}
            row = [dataset, _display_name(attack)]
            for rho in rhos:
                config = _configure(
                    profile, dataset, attack, rho=0.0 if attack == "none" else rho
                )
                result = run_experiment(config)
                metrics = _metrics_row(result)
                raw[dataset][attack][f"rho={rho}"] = metrics
                row.extend(_fmt(metrics[m]) for m in ("ER@5", "ER@10", "NDCG@10"))
            rows.append(row)
    return TableResult(
        title="Table VII: effectiveness of attacks with different proportions of malicious users",
        headers=headers,
        rows=rows,
        raw=raw,
    )


# --------------------------------------------------------------------- #
# Table VIII — model-poisoning comparison on MovieLens-1M
# --------------------------------------------------------------------- #
def table8_model_poisoning(
    profile: ExperimentProfile = BENCH_PROFILE,
    attacks: tuple[str, ...] = ("none", "p3", "p4", "eb", "pipattack", "fedrecattack"),
    rhos: tuple[float, ...] = (0.10, 0.20, 0.30, 0.40),
    dataset: str = "ml-1m",
) -> TableResult:
    """Table VIII: HR@10 and ER@5 of model-poisoning attacks on MovieLens-1M."""
    headers = ["Attack"]
    for rho in rhos:
        headers.extend([f"HR@10 (rho={rho:.0%})", f"ER@5 (rho={rho:.0%})"])
    rows: list[list[str]] = []
    raw: dict[str, dict[str, dict[str, float]]] = {}
    for attack in attacks:
        raw[attack] = {}
        row = [_display_name(attack)]
        for rho in rhos:
            config = _configure(
                profile, dataset, attack, rho=0.0 if attack == "none" else rho
            )
            result = run_experiment(config)
            raw[attack][f"rho={rho}"] = {"HR@10": result.hr_at_10, "ER@5": result.er_at_5}
            row.extend([_fmt(result.hr_at_10), _fmt(result.er_at_5)])
        rows.append(row)
    return TableResult(
        title="Table VIII: HR@10 and ER@5 of model poisoning attacks (MovieLens-1M)",
        headers=headers,
        rows=rows,
        raw=raw,
    )


# --------------------------------------------------------------------- #
# Table IX — ablation of the public interactions
# --------------------------------------------------------------------- #
def table9_ablation(
    profile: ExperimentProfile = BENCH_PROFILE,
    datasets: tuple[str, ...] = _ALL_DATASETS,
    xis: tuple[float, ...] = (0.01, 0.0),
) -> TableResult:
    """Table IX: FedRecAttack with (xi=1%) and without (xi=0%) public interactions."""
    headers = ["Dataset", "Metric"] + [f"xi={xi:.0%}" for xi in xis]
    rows: list[list[str]] = []
    raw: dict[str, dict[str, dict[str, float]]] = {}
    for dataset in datasets:
        raw[dataset] = {}
        results = {}
        for xi in xis:
            config = _configure(profile, dataset, "fedrecattack", xi=xi)
            results[xi] = _metrics_row(run_experiment(config))
            raw[dataset][f"xi={xi}"] = results[xi]
        for metric in ("ER@5", "ER@10", "NDCG@10"):
            rows.append([dataset, metric] + [_fmt(results[xi][metric]) for xi in xis])
    return TableResult(
        title="Table IX: effectiveness of FedRecAttack with & without public interactions",
        headers=headers,
        rows=rows,
        raw=raw,
    )


# --------------------------------------------------------------------- #
# Extension: robust-aggregation defenses (the paper's future work)
# --------------------------------------------------------------------- #
def defense_table(
    profile: ExperimentProfile = BENCH_PROFILE,
    aggregators: tuple[str, ...] = ("sum", "median", "trimmed_mean", "krum", "norm_bounding"),
    dataset: str = "ml-100k",
    rho: float = 0.05,
) -> TableResult:
    """Extension table: FedRecAttack against byzantine-robust aggregation."""
    headers = ["Aggregator", "ER@10", "HR@10"]
    rows: list[list[str]] = []
    raw: dict[str, dict[str, float]] = {}
    for aggregator in aggregators:
        config = _configure(
            profile, dataset, "fedrecattack", rho=rho, aggregator=aggregator
        )
        result = run_experiment(config)
        raw[aggregator] = {"ER@10": result.er_at_10, "HR@10": result.hr_at_10}
        rows.append([aggregator, _fmt(result.er_at_10), _fmt(result.hr_at_10)])
    return TableResult(
        title="Extension: FedRecAttack under robust aggregation defenses",
        headers=headers,
        rows=rows,
        raw=raw,
    )


# --------------------------------------------------------------------- #
# Extension: gradient-anomaly detection (the paper's other defense family)
# --------------------------------------------------------------------- #
def detection_table(
    profile: ExperimentProfile = BENCH_PROFILE,
    attacks: tuple[str, ...] = ("fedrecattack", "eb", "pipattack"),
    dataset: str = "ml-100k",
    rho: float = 0.05,
    round_stride: int = 4,
) -> TableResult:
    """Extension table: detection quality of gradient-anomaly detectors.

    For every attack the experiment is run once while recording every
    ``round_stride``-th round's client uploads; each detector from
    :mod:`repro.defenses` is then scored on precision, recall and
    false-positive rate over the recorded uploads.
    """
    from repro.defenses.detectors import (
        GradientNormDetector,
        NonZeroRowCountDetector,
        TargetConcentrationDetector,
        evaluate_detector,
    )

    detectors = [
        GradientNormDetector(),
        NonZeroRowCountDetector(),
        TargetConcentrationDetector(),
    ]
    headers = ["Attack", "Detector", "Precision", "Recall", "FPR"]
    rows: list[list[str]] = []
    raw: dict[str, dict[str, dict[str, float]]] = {}
    for attack in attacks:
        observed: list[list[ClientUpdate]] = []

        def observer(round_index: int, updates: list[ClientUpdate]) -> None:
            if round_index % round_stride == 0:
                observed.append([update.copy() for update in updates])

        config = _configure(profile, dataset, attack, rho=rho)
        run_experiment(config, update_observer=observer)
        raw[attack] = {}
        for detector in detectors:
            report = evaluate_detector(detector, observed)
            raw[attack][detector.name] = {
                "precision": report.precision,
                "recall": report.recall,
                "fpr": report.false_positive_rate,
            }
            rows.append(
                [
                    _display_name(attack),
                    detector.name,
                    _fmt(report.precision),
                    _fmt(report.recall),
                    _fmt(report.false_positive_rate),
                ]
            )
    return TableResult(
        title="Extension: gradient-anomaly detection of model poisoning attacks",
        headers=headers,
        rows=rows,
        raw=raw,
    )


def _display_name(attack: str) -> str:
    mapping = {
        "none": "None",
        "random": "Random",
        "bandwagon": "Bandwagon",
        "popular": "Popular",
        "fedrecattack": "FedRecAttack",
        "eb": "EB",
        "pipattack": "PipAttack",
        "p1": "P1",
        "p2": "P2",
        "p3": "P3",
        "p4": "P4",
    }
    return mapping.get(attack.lower(), attack)
