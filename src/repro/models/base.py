"""Abstract recommender interface.

Every recommender in the library exposes the same small surface: score all
items for a user feature vector and produce top-K recommendations excluding
already-interacted items.  The federated simulator and the attacks only rely
on this interface, which is what makes the attack model-agnostic (the paper's
Section III-A notes the attack applies to any collaborative-filtering
recommender).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ModelError

__all__ = ["Recommender"]


class Recommender(ABC):
    """Interface shared by all recommender models."""

    @property
    @abstractmethod
    def num_users(self) -> int:
        """Number of users the model was built for."""

    @property
    @abstractmethod
    def num_items(self) -> int:
        """Number of items the model scores."""

    @property
    @abstractmethod
    def num_factors(self) -> int:
        """Dimensionality ``k`` of the feature vectors."""

    @abstractmethod
    def score_items(self, user_vector: np.ndarray, items: np.ndarray | None = None) -> np.ndarray:
        """Predicted rating scores of ``items`` (all items if ``None``)."""

    def score_block(self, user_vectors: np.ndarray) -> np.ndarray:
        """Score a whole block of users against the full catalog at once.

        ``user_vectors`` has shape ``(B, k)`` and the result shape
        ``(B, num_items)``.  This is the batched counterpart of
        :meth:`score_items` consumed by the vectorized evaluation engine;
        subclasses should override it with a stacked implementation (one
        matrix product for MF) — this generic fallback scores row by row.
        """
        user_vectors = np.atleast_2d(np.asarray(user_vectors, dtype=np.float64))
        return np.stack([self.score_items(vector) for vector in user_vectors])

    def recommend(
        self,
        user_vector: np.ndarray,
        k: int,
        exclude_items: np.ndarray | None = None,
    ) -> np.ndarray:
        """Top-``k`` items for ``user_vector``, excluding ``exclude_items``.

        This is ``V^rec_i``: the ``K`` highest-scoring items among the items
        the user has not interacted with (Section III-C).
        """
        if k <= 0:
            raise ModelError(f"k must be positive, got {k}")
        scores = self.score_items(user_vector).astype(np.float64, copy=True)
        if exclude_items is not None and len(exclude_items) > 0:
            scores[np.asarray(exclude_items, dtype=np.int64)] = -np.inf
        k = min(k, scores.shape[0])
        top = np.argpartition(-scores, k - 1)[:k]
        return top[np.argsort(-scores[top], kind="stable")]
