"""Abstract recommender interface and the formal scoring protocol.

Every recommender in the library exposes the same small surface: score all
items for a user feature vector and produce top-K recommendations excluding
already-interacted items.  The federated simulator and the attacks only rely
on this interface, which is what makes the attack model-agnostic (the paper's
Section III-A notes the attack applies to any collaborative-filtering
recommender).

:class:`ScorerProtocol` is the *structural* half of that contract: the
id-based scoring surface the evaluation engine and the serving layer consume.
It is a :class:`typing.Protocol`, not a base class — MF implements it by
inheritance from :class:`Recommender`, the MLP path through the standalone
:class:`~repro.models.neural.MLPRecommender` adapter, and any future scorer
qualifies by shape alone.  Consumers dispatch on the protocol (one
``isinstance(source, ScorerProtocol)`` check is the sanctioned idiom), never
on concrete model classes — repro-lint R8 enforces exactly that outside
``models/``.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from typing import Protocol, runtime_checkable

import numpy as np

from repro.exceptions import ModelError

__all__ = [
    "Recommender",
    "ScorerProtocol",
    "CandidateScorerProtocol",
    "check_candidate_sets",
]


def check_candidate_sets(
    users: np.ndarray,
    candidate_items: np.ndarray,
    *,
    n_users: int,
    n_items: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Validate a ``score_candidates`` call's id arrays.

    ``users`` must be a 1-D block of in-range user ids and
    ``candidate_items`` a rectangular ``(B, C)`` matrix of in-range item
    ids aligned row-for-row with ``users``.  Returns both as ``int64``
    arrays.  Shared by every :class:`CandidateScorerProtocol`
    implementation so the gather paths reject malformed sets identically.
    """
    users = np.asarray(users, dtype=np.int64)
    candidate_items = np.asarray(candidate_items, dtype=np.int64)
    if users.ndim != 1:
        raise ModelError(f"users must be a 1-D array of user ids, got shape {users.shape}")
    if candidate_items.ndim != 2:
        raise ModelError(
            "candidate_items must be a (B, C) matrix of item ids, got shape "
            f"{candidate_items.shape}"
        )
    if candidate_items.shape[0] != users.shape[0]:
        raise ModelError(
            f"candidate_items must have one row per user, got {candidate_items.shape[0]} "
            f"rows for {users.shape[0]} users"
        )
    if users.size and (int(users.min()) < 0 or int(users.max()) >= n_users):
        raise ModelError(f"user ids out of range [0, {n_users})")
    if candidate_items.size and (
        int(candidate_items.min()) < 0 or int(candidate_items.max()) >= n_items
    ):
        raise ModelError(f"candidate item ids out of range [0, {n_items})")
    return users, candidate_items


@runtime_checkable
class ScorerProtocol(Protocol):
    """The id-based scoring surface served models must expose.

    Implementations score *stored* users by id — the caller never sees the
    feature vectors, which is what lets an immutable factor snapshot, a live
    MF model and an MLP-scored model serve identically.  The contract:

    * ``n_users`` / ``n_items`` give the catalog dimensions,
    * ``score(user, items)`` returns one user's scores for the requested
      items (all items when ``None``),
    * ``score_block(users)`` returns the stacked ``(B, n_items)`` score
      matrix of a block of user ids — the primitive of the vectorized
      evaluation engine and of :class:`~repro.serving.RecommenderService`.
      For bit-reproducible rankings, implementations must compute a block's
      scores in one stacked pass (BLAS results are not row-stable across
      different GEMM shapes, so per-row recomputation would drift).

    The protocol is ``runtime_checkable``: ``isinstance(x, ScorerProtocol)``
    checks the attribute surface, which is all the structural dispatch in
    :func:`repro.metrics.evaluation.resolve_score_block` needs.

    Scorers that can score *per-user candidate sets* without a full-catalog
    pass additionally implement the optional
    :class:`CandidateScorerProtocol` extension (``score_candidates``) — the
    sampled evaluation protocol's fast path.
    """

    @property
    def n_users(self) -> int:
        """Number of users the scorer can score."""
        ...

    @property
    def n_items(self) -> int:
        """Number of items every score row covers."""
        ...

    def score(self, user: int, items: np.ndarray | None = None) -> np.ndarray:
        """Scores of ``items`` (all items if ``None``) for one stored user."""
        ...

    def score_block(self, users: np.ndarray, /) -> np.ndarray:
        """Stacked ``(B, n_items)`` scores for a 1-D block of user ids."""
        ...


@runtime_checkable
class CandidateScorerProtocol(ScorerProtocol, Protocol):
    """The optional candidate-gather extension of :class:`ScorerProtocol`.

    The sampled ranking protocol only ever reads ``1 + num_negatives``
    candidate columns per user, so scoring a whole ``(B, n_items)`` block
    just to gather a few columns wastes the dominant GEMM.  Scorers that can
    do better implement ``score_candidates(users, candidate_items)``: given
    a 1-D block of ``B`` user ids and a rectangular ``(B, C)`` matrix of
    item ids, return the ``(B, C)`` matrix of scores — row ``b`` scores user
    ``users[b]`` on its own candidate row.

    The surface is deliberately a *second* protocol, not new members on
    :class:`ScorerProtocol`: ``isinstance(x, ScorerProtocol)`` keeps
    admitting every existing minimal scorer, and consumers that want the
    fast path check this protocol instead
    (:func:`repro.metrics.evaluation.resolve_score_candidates` is the
    sanctioned site, with a generic slicing fallback for sources that only
    block-score).  Implementations must validate ids through
    :func:`check_candidate_sets` so malformed sets fail identically on
    every path.
    """

    def score_candidates(
        self, users: np.ndarray, candidate_items: np.ndarray, /
    ) -> np.ndarray:
        """``(B, C)`` scores of per-user candidate sets for a block of user ids."""
        ...


class Recommender(ABC):
    """Interface shared by all recommender models."""

    @property
    @abstractmethod
    def num_users(self) -> int:
        """Number of users the model was built for."""

    @property
    @abstractmethod
    def num_items(self) -> int:
        """Number of items the model scores."""

    @property
    @abstractmethod
    def num_factors(self) -> int:
        """Dimensionality ``k`` of the feature vectors."""

    @abstractmethod
    def score_items(self, user_vector: np.ndarray, items: np.ndarray | None = None) -> np.ndarray:
        """Predicted rating scores of ``items`` (all items if ``None``)."""

    def score_block(self, user_vectors: np.ndarray, /) -> np.ndarray:
        """Score a whole block of user *vectors* against the full catalog.

        .. deprecated::
            This is the legacy duck-typed fallback — ``user_vectors`` has
            shape ``(B, k)`` and the result shape ``(B, num_items)``, scored
            row by row.  New scorers implement the id-based
            :meth:`ScorerProtocol.score_block` instead (as
            :class:`~repro.models.mf.MatrixFactorizationModel` does), which
            is what the evaluation engine and the serving layer dispatch on.
            This shim survives so existing vector-based subclasses keep
            working, but it warns.
        """
        warnings.warn(
            "the generic Recommender.score_block(user_vectors) fallback is "
            "deprecated; implement the id-based "
            "ScorerProtocol.score_block(users) surface instead",
            DeprecationWarning,
            stacklevel=2,
        )
        user_vectors = np.atleast_2d(np.asarray(user_vectors, dtype=np.float64))
        return np.stack([self.score_items(vector) for vector in user_vectors])

    def recommend(
        self,
        user_vector: np.ndarray,
        k: int,
        exclude_items: np.ndarray | None = None,
    ) -> np.ndarray:
        """Top-``k`` items for ``user_vector``, excluding ``exclude_items``.

        This is ``V^rec_i``: the ``K`` highest-scoring items among the items
        the user has not interacted with (Section III-C).
        """
        if k <= 0:
            raise ModelError(f"k must be positive, got {k}")
        scores = self.score_items(user_vector).astype(np.float64, copy=True)
        if exclude_items is not None and len(exclude_items) > 0:
            scores[np.asarray(exclude_items, dtype=np.int64)] = -np.inf
        k = min(k, scores.shape[0])
        top = np.argpartition(-scores, k - 1)[:k]
        return top[np.argsort(-scores[top], kind="stable")]
