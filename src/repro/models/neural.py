"""Learnable interaction function (a small MLP scorer).

The paper notes (Section III-A/IV) that when the recommender is deep-learning
based the interaction function ``Upsilon`` is learnable and its parameters
``Theta`` are shared with the server alongside ``V``.  The main experiments
use plain MF, but to demonstrate the claimed generality the library ships a
compact two-layer MLP scorer with hand-derived gradients.  It consumes the
concatenation ``[u_i, v_j]`` and outputs a scalar score.

The scorer is deliberately small (one hidden layer, ReLU) — it exists to
exercise the "shared Theta" code path of the federated protocol and the
attacks, not to chase accuracy records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError
from repro.models.base import check_candidate_sets
from repro.models.losses import segment_sum
from repro.rng import ensure_rng

__all__ = ["MLPScorer", "MLPScorerGradients", "MLPRecommender"]


@dataclass
class MLPScorerGradients:
    """Gradients of the scorer output with respect to its inputs and weights.

    Attributes
    ----------
    grad_user:
        ``d score / d u_i`` rows, shape ``(batch, k)``.
    grad_item:
        ``d score / d v_j`` rows, shape ``(batch, k)``.
    grad_params:
        Flat gradient with respect to the scorer parameters (``Theta``),
        summed over the batch and scaled by the upstream gradient.
    """

    grad_user: np.ndarray
    grad_item: np.ndarray
    grad_params: np.ndarray


class MLPScorer:
    """Two-layer MLP interaction function ``score = w2 . relu(W1 [u; v] + b1) + b2``."""

    def __init__(
        self,
        num_factors: int,
        hidden_units: int = 32,
        init_scale: float = 0.1,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if num_factors <= 0 or hidden_units <= 0:
            raise ModelError("num_factors and hidden_units must be positive")
        generator = ensure_rng(rng)
        self.num_factors = int(num_factors)
        self.hidden_units = int(hidden_units)
        input_dim = 2 * num_factors
        self.w1 = generator.normal(0.0, init_scale, size=(hidden_units, input_dim))
        self.b1 = np.zeros(hidden_units, dtype=np.float64)
        self.w2 = generator.normal(0.0, init_scale, size=hidden_units)
        self.b2 = 0.0

    # ------------------------------------------------------------------ #
    # Parameter (Theta) flattening — what gets shared with the server
    # ------------------------------------------------------------------ #
    @property
    def num_parameters(self) -> int:
        """Total number of scalar parameters in ``Theta``."""
        return self.w1.size + self.b1.size + self.w2.size + 1

    def get_parameters(self) -> np.ndarray:
        """Flatten ``Theta`` into a single vector (server representation)."""
        return np.concatenate([self.w1.ravel(), self.b1, self.w2, [self.b2]])

    def set_parameters(self, flat: np.ndarray) -> None:
        """Load ``Theta`` from a flat vector."""
        flat = np.asarray(flat, dtype=np.float64)
        if flat.shape != (self.num_parameters,):
            raise ModelError(
                f"expected {self.num_parameters} parameters, got shape {flat.shape}"
            )
        w1_size = self.w1.size
        b1_size = self.b1.size
        w2_size = self.w2.size
        self.w1 = flat[:w1_size].reshape(self.w1.shape).copy()
        self.b1 = flat[w1_size : w1_size + b1_size].copy()
        self.w2 = flat[w1_size + b1_size : w1_size + b1_size + w2_size].copy()
        self.b2 = float(flat[-1])

    def copy(self) -> "MLPScorer":
        """Deep copy of the scorer."""
        clone = MLPScorer(self.num_factors, self.hidden_units, rng=0)
        clone.set_parameters(self.get_parameters())
        return clone

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #
    def score(self, user_vectors: np.ndarray, item_vectors: np.ndarray) -> np.ndarray:
        """Scores for aligned batches of user and item vectors."""
        user_vectors, item_vectors = self._validate_batch(user_vectors, item_vectors)
        hidden = self._hidden(user_vectors, item_vectors)
        return hidden @ self.w2 + self.b2

    def score_block(
        self,
        user_vectors: np.ndarray,
        item_vectors: np.ndarray,
        max_chunk_elements: int = 1 << 21,
    ) -> np.ndarray:
        """Scores of every (user, item) combination, shape ``(B, N)``.

        The cross product of a ``(B, k)`` user block with the ``(N, k)`` item
        matrix — the scorer-path counterpart of
        :meth:`MatrixFactorizationModel.score_block`.  The first layer is
        split into its user and item halves (``W1 [u; v] = W1u u + W1v v``),
        so the two small projections are computed once each and broadcast,
        instead of materialising ``B * N`` concatenated input rows.  The
        ``(B, N, hidden)`` intermediate is processed in user chunks bounded
        by ``max_chunk_elements`` float64 elements to keep memory flat.
        """
        user_vectors = np.atleast_2d(np.asarray(user_vectors, dtype=np.float64))
        item_vectors = np.atleast_2d(np.asarray(item_vectors, dtype=np.float64))
        if user_vectors.shape[1] != self.num_factors or item_vectors.shape[1] != self.num_factors:
            raise ModelError(
                f"expected feature dimension {self.num_factors}, got user "
                f"{user_vectors.shape} and item {item_vectors.shape}"
            )
        user_pre = user_vectors @ self.w1[:, : self.num_factors].T
        item_pre = item_vectors @ self.w1[:, self.num_factors :].T + self.b1
        num_users = user_vectors.shape[0]
        num_items = item_vectors.shape[0]
        chunk = max(1, int(max_chunk_elements // max(1, num_items * self.hidden_units)))
        scores = np.empty((num_users, num_items), dtype=np.float64)
        for start in range(0, num_users, chunk):
            stop = min(num_users, start + chunk)
            hidden = np.maximum(user_pre[start:stop, None, :] + item_pre[None, :, :], 0.0)
            scores[start:stop] = hidden @ self.w2 + self.b2
        return scores

    def score_candidate_sets(
        self,
        user_vectors: np.ndarray,
        item_vector_sets: np.ndarray,
        max_chunk_elements: int = 1 << 21,
    ) -> np.ndarray:
        """Scores of per-user candidate sets, shape ``(B, C)``.

        ``item_vector_sets`` is the ``(B, C, k)`` gather of each user's own
        candidate vectors — the candidate-path counterpart of
        :meth:`score_block`, which crosses a user block with the *whole*
        item matrix.  The first layer is split the same way
        (``W1 [u; v] = W1u u + W1v v``), the item half is applied to the
        gathered ``(B, C, k)`` stack, and the ``(B, C, hidden)``
        intermediate is processed in user chunks bounded by
        ``max_chunk_elements`` float64 elements to keep memory flat.
        """
        user_vectors = np.atleast_2d(np.asarray(user_vectors, dtype=np.float64))
        item_vector_sets = np.asarray(item_vector_sets, dtype=np.float64)
        if item_vector_sets.ndim != 3:
            raise ModelError(
                "item_vector_sets must be a (B, C, k) stack of per-user "
                f"candidate vectors, got shape {item_vector_sets.shape}"
            )
        if user_vectors.shape[1] != self.num_factors or item_vector_sets.shape[2] != self.num_factors:
            raise ModelError(
                f"expected feature dimension {self.num_factors}, got user "
                f"{user_vectors.shape} and item {item_vector_sets.shape}"
            )
        if item_vector_sets.shape[0] != user_vectors.shape[0]:
            raise ModelError(
                "item_vector_sets must have one candidate row per user, got "
                f"{item_vector_sets.shape[0]} rows for {user_vectors.shape[0]} users"
            )
        user_pre = user_vectors @ self.w1[:, : self.num_factors].T
        item_pre = item_vector_sets @ self.w1[:, self.num_factors :].T + self.b1
        num_users, num_candidates = item_vector_sets.shape[0], item_vector_sets.shape[1]
        chunk = max(1, int(max_chunk_elements // max(1, num_candidates * self.hidden_units)))
        scores = np.empty((num_users, num_candidates), dtype=np.float64)
        for start in range(0, num_users, chunk):
            stop = min(num_users, start + chunk)
            hidden = np.maximum(user_pre[start:stop, None, :] + item_pre[start:stop], 0.0)
            scores[start:stop] = hidden @ self.w2 + self.b2
        return scores

    def score_and_gradients(
        self,
        user_vectors: np.ndarray,
        item_vectors: np.ndarray,
        upstream: np.ndarray | None = None,
    ) -> tuple[np.ndarray, MLPScorerGradients]:
        """Scores plus gradients with respect to inputs and parameters.

        ``upstream`` is ``d loss / d score`` per batch element (defaults to
        ones, i.e. the Jacobian of the raw scores).
        """
        user_vectors, item_vectors = self._validate_batch(user_vectors, item_vectors)
        inputs = np.concatenate([user_vectors, item_vectors], axis=1)
        pre_activation = inputs @ self.w1.T + self.b1
        hidden = np.maximum(pre_activation, 0.0)
        scores = hidden @ self.w2 + self.b2

        if upstream is None:
            upstream = np.ones(scores.shape[0], dtype=np.float64)
        upstream = np.asarray(upstream, dtype=np.float64)

        relu_mask = (pre_activation > 0.0).astype(np.float64)
        # d score / d hidden = w2 ; back through ReLU and W1.
        grad_hidden = upstream[:, None] * self.w2[None, :] * relu_mask
        grad_inputs = grad_hidden @ self.w1
        grad_user = grad_inputs[:, : self.num_factors]
        grad_item = grad_inputs[:, self.num_factors :]

        grad_w1 = grad_hidden.T @ inputs
        grad_b1 = grad_hidden.sum(axis=0)
        grad_w2 = hidden.T @ upstream
        grad_b2 = float(upstream.sum())
        grad_params = np.concatenate([grad_w1.ravel(), grad_b1, grad_w2, [grad_b2]])

        return scores, MLPScorerGradients(
            grad_user=grad_user, grad_item=grad_item, grad_params=grad_params
        )

    def score_and_segment_gradients(
        self,
        user_vectors: np.ndarray,
        item_vectors: np.ndarray,
        upstream: np.ndarray,
        segments: np.ndarray,
        num_segments: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Batched gradients with per-segment (per-client) ``Theta`` gradients.

        Like :meth:`score_and_gradients`, but instead of summing the parameter
        gradient over the whole batch it sums it per segment, so one call can
        serve a whole round of clients: ``segments[i]`` assigns batch row ``i``
        to a client and the returned parameter gradient has shape
        ``(num_segments, num_parameters)``.

        Returns ``(scores, grad_user, grad_item, grad_params_per_segment)``.
        """
        user_vectors, item_vectors = self._validate_batch(user_vectors, item_vectors)
        segments = np.asarray(segments, dtype=np.int64)
        upstream = np.asarray(upstream, dtype=np.float64)
        inputs = np.concatenate([user_vectors, item_vectors], axis=1)
        pre_activation = inputs @ self.w1.T + self.b1
        hidden = np.maximum(pre_activation, 0.0)
        scores = hidden @ self.w2 + self.b2

        relu_mask = (pre_activation > 0.0).astype(np.float64)
        grad_hidden = upstream[:, None] * self.w2[None, :] * relu_mask
        grad_inputs = grad_hidden @ self.w1
        grad_user = grad_inputs[:, : self.num_factors]
        grad_item = grad_inputs[:, self.num_factors :]

        if segments.shape[0] == 0:
            zero_params = np.zeros((num_segments, self.num_parameters), dtype=np.float64)
            return scores, grad_user, grad_item, zero_params

        # grad_w1 per segment is a small GEMM (grad_hidden.T @ inputs over the
        # segment's rows) — the same computation the per-client reference
        # performs, without ever materialising a (batch, hidden * input) outer
        # product for the whole round.
        order = np.argsort(segments, kind="stable")
        sorted_segments = segments[order]
        grad_hidden_sorted = grad_hidden[order]
        inputs_sorted = inputs[order]
        boundaries = np.empty(sorted_segments.shape[0], dtype=bool)
        boundaries[0] = True
        np.not_equal(sorted_segments[1:], sorted_segments[:-1], out=boundaries[1:])
        starts = np.flatnonzero(boundaries)
        stops = np.append(starts[1:], sorted_segments.shape[0])
        grad_w1 = np.zeros((num_segments, self.w1.size), dtype=np.float64)
        for start, stop in zip(starts, stops):
            grad_w1[int(sorted_segments[start])] = (
                grad_hidden_sorted[start:stop].T @ inputs_sorted[start:stop]
            ).ravel()
        grad_b1 = segment_sum(grad_hidden, segments, num_segments)
        grad_w2 = segment_sum(hidden, segments, num_segments, weights=upstream)
        grad_b2 = np.bincount(segments, weights=upstream, minlength=num_segments)
        grad_params = np.concatenate([grad_w1, grad_b1, grad_w2, grad_b2[:, None]], axis=1)
        return scores, grad_user, grad_item, grad_params

    def _hidden(self, user_vectors: np.ndarray, item_vectors: np.ndarray) -> np.ndarray:
        inputs = np.concatenate([user_vectors, item_vectors], axis=1)
        return np.maximum(inputs @ self.w1.T + self.b1, 0.0)

    def _validate_batch(
        self, user_vectors: np.ndarray, item_vectors: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        user_vectors = np.atleast_2d(np.asarray(user_vectors, dtype=np.float64))
        item_vectors = np.atleast_2d(np.asarray(item_vectors, dtype=np.float64))
        if user_vectors.shape != item_vectors.shape:
            raise ModelError(
                "user_vectors and item_vectors must have matching shapes, got "
                f"{user_vectors.shape} and {item_vectors.shape}"
            )
        if user_vectors.shape[1] != self.num_factors:
            raise ModelError(
                f"expected feature dimension {self.num_factors}, got {user_vectors.shape[1]}"
            )
        return user_vectors, item_vectors


class MLPRecommender:
    """Id-based scoring adapter binding factor matrices to an :class:`MLPScorer`.

    The scorer kernel itself is stateless with respect to users — it maps
    aligned (or crossed) batches of feature vectors to scores.  Serving and
    evaluation, however, consume the id-based
    :class:`~repro.models.base.ScorerProtocol`.  This adapter closes the gap:
    it holds the user/item factor matrices alongside the scorer and exposes
    ``score`` / ``score_block`` over user *ids*, so the MLP path serves
    through exactly the same protocol as plain MF.

    Deliberately **not** a :class:`~repro.models.base.Recommender` subclass:
    protocol conformance is structural, which is the point of the redesign —
    any object with the right surface serves, inheritance not required.

    The factor arrays are adopted as-is (no copy); every scoring path only
    reads them, so read-only snapshot views stay safe.
    """

    def __init__(
        self,
        user_factors: np.ndarray,
        item_factors: np.ndarray,
        scorer: MLPScorer,
    ) -> None:
        user_factors = np.asarray(user_factors, dtype=np.float64)
        item_factors = np.asarray(item_factors, dtype=np.float64)
        if user_factors.ndim != 2 or item_factors.ndim != 2:
            raise ModelError(
                "factor matrices must be 2-D, got shapes "
                f"{user_factors.shape} and {item_factors.shape}"
            )
        if (
            user_factors.shape[1] != scorer.num_factors
            or item_factors.shape[1] != scorer.num_factors
        ):
            raise ModelError(
                f"factor matrices must have feature dimension {scorer.num_factors}, "
                f"got {user_factors.shape} and {item_factors.shape}"
            )
        self.user_factors = user_factors
        self.item_factors = item_factors
        self.scorer = scorer

    @property
    def n_users(self) -> int:
        """Number of users the adapter can score."""
        return int(self.user_factors.shape[0])

    @property
    def n_items(self) -> int:
        """Number of items every score row covers."""
        return int(self.item_factors.shape[0])

    def score(self, user: int, items: np.ndarray | None = None) -> np.ndarray:
        """Scores of ``items`` (all items if ``None``) for one stored user.

        Computed through the same split-first-layer block kernel as
        :meth:`score_block`, so ``score(u)`` is bit-identical to
        ``score_block([u])[0]`` — single lookups and blocked serving agree.
        """
        user = int(user)
        if user < 0 or user >= self.n_users:
            raise ModelError(f"user id {user} out of range [0, {self.n_users})")
        item_vectors = (
            self.item_factors
            if items is None
            else self.item_factors[np.asarray(items, dtype=np.int64)]
        )
        return self.scorer.score_block(self.user_factors[user][None, :], item_vectors)[0]

    def score_block(self, users: np.ndarray, /) -> np.ndarray:
        """Stacked ``(B, n_items)`` scores for a 1-D block of user ids."""
        users = np.asarray(users, dtype=np.int64)
        if users.ndim != 1:
            raise ModelError(f"users must be a 1-D array of user ids, got shape {users.shape}")
        if users.size and (int(users.min()) < 0 or int(users.max()) >= self.n_users):
            raise ModelError(f"user ids out of range [0, {self.n_users})")
        return self.scorer.score_block(self.user_factors[users], self.item_factors)

    def score_candidates(self, users: np.ndarray, candidate_items: np.ndarray, /) -> np.ndarray:
        """``(B, C)`` scores of per-user candidate sets via the gathered forward.

        Gathers each user's candidate vectors into a ``(B, C, k)`` stack and
        runs the scorer's chunked
        :meth:`~MLPScorer.score_candidate_sets` kernel — the
        :class:`~repro.models.base.CandidateScorerProtocol` surface of the
        MLP path.
        """
        users, candidate_items = check_candidate_sets(
            users, candidate_items, n_users=self.n_users, n_items=self.n_items
        )
        return self.scorer.score_candidate_sets(
            self.user_factors[users], self.item_factors[candidate_items]
        )
