"""Matrix-factorization recommender.

The interaction function is the fixed dot product of Eq. (1):
``x_ij = u_i . v_j``.  In the federated setting the server owns the item
matrix ``V`` while every client keeps its own row of ``U``; this class is the
parameter container plus the scoring/recommendation logic shared by both
sides and by the attacker.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.models.base import Recommender
from repro.rng import ensure_rng

__all__ = ["MatrixFactorizationModel"]


class MatrixFactorizationModel(Recommender):
    """MF model with explicit user and item factor matrices.

    Parameters
    ----------
    num_users, num_items:
        Sizes of the factor matrices.
    num_factors:
        Dimensionality ``k`` of the feature vectors (paper default 32).
    init_scale:
        Standard deviation of the Gaussian initialisation.
    rng:
        Randomness for initialisation.
    """

    def __init__(
        self,
        num_users: int,
        num_items: int,
        num_factors: int = 32,
        init_scale: float = 0.01,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if num_users <= 0 or num_items <= 0:
            raise ModelError("num_users and num_items must be positive")
        if num_factors <= 0:
            raise ModelError("num_factors must be positive")
        if init_scale <= 0:
            raise ModelError("init_scale must be positive")
        generator = ensure_rng(rng)
        self._num_users = int(num_users)
        self._num_items = int(num_items)
        self._num_factors = int(num_factors)
        self.user_factors = generator.normal(0.0, init_scale, size=(num_users, num_factors))
        self.item_factors = generator.normal(0.0, init_scale, size=(num_items, num_factors))

    # ------------------------------------------------------------------ #
    # Recommender interface
    # ------------------------------------------------------------------ #
    @property
    def num_users(self) -> int:
        return self._num_users

    @property
    def num_items(self) -> int:
        return self._num_items

    @property
    def num_factors(self) -> int:
        return self._num_factors

    def score_items(self, user_vector: np.ndarray, items: np.ndarray | None = None) -> np.ndarray:
        """Predicted scores ``u . v_j`` for the requested items."""
        user_vector = np.asarray(user_vector, dtype=np.float64)
        if user_vector.shape != (self._num_factors,):
            raise ModelError(
                f"user_vector must have shape ({self._num_factors},), got {user_vector.shape}"
            )
        if items is None:
            return self.item_factors @ user_vector
        return self.item_factors[np.asarray(items, dtype=np.int64)] @ user_vector

    def score_block(self, user_vectors: np.ndarray) -> np.ndarray:
        """Stacked scores ``U_block V^T`` for a ``(B, k)`` block of user vectors.

        One matrix product replaces ``B`` :meth:`score_items` calls; this is
        the scoring primitive of the vectorized evaluation engine.
        """
        user_vectors = np.atleast_2d(np.asarray(user_vectors, dtype=np.float64))
        if user_vectors.shape[1] != self._num_factors:
            raise ModelError(
                f"user_vectors must have shape (B, {self._num_factors}), "
                f"got {user_vectors.shape}"
            )
        return user_vectors @ self.item_factors.T

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    def score_user(self, user: int, items: np.ndarray | None = None) -> np.ndarray:
        """Scores for the stored feature vector of ``user``."""
        self._check_user(user)
        return self.score_items(self.user_factors[user], items)

    def score_matrix(self, users: np.ndarray | None = None) -> np.ndarray:
        """Dense score matrix ``U V^T`` for the requested users."""
        factors = self.user_factors if users is None else self.user_factors[np.asarray(users)]
        return factors @ self.item_factors.T

    def recommend_for_user(
        self, user: int, k: int, exclude_items: np.ndarray | None = None
    ) -> np.ndarray:
        """Top-``k`` recommendation for a stored user."""
        self._check_user(user)
        return self.recommend(self.user_factors[user], k, exclude_items)

    def copy(self) -> "MatrixFactorizationModel":
        """Deep copy of the model (used to snapshot server state)."""
        clone = MatrixFactorizationModel(
            self._num_users, self._num_items, self._num_factors, rng=0
        )
        clone.user_factors = self.user_factors.copy()
        clone.item_factors = self.item_factors.copy()
        return clone

    def _check_user(self, user: int) -> None:
        if user < 0 or user >= self._num_users:
            raise ModelError(f"user id {user} out of range [0, {self._num_users})")

    def __repr__(self) -> str:
        return (
            f"MatrixFactorizationModel(users={self._num_users}, items={self._num_items}, "
            f"factors={self._num_factors})"
        )
