"""Matrix-factorization recommender.

The interaction function is the fixed dot product of Eq. (1):
``x_ij = u_i . v_j``.  In the federated setting the server owns the item
matrix ``V`` while every client keeps its own row of ``U``; this class is the
parameter container plus the scoring/recommendation logic shared by both
sides and by the attacker.

The model implements the id-based
:class:`~repro.models.base.ScorerProtocol`: :meth:`score_block` takes user
*ids* and scores them in one ``U[users] @ V.T`` product — bit-identical to
the historical vector-based idiom ``score_block(user_factors[users])``,
since the gather and the GEMM are the same operations in the same order.
Vector-based block scoring remains available as :meth:`score_matrix`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.models.base import Recommender, check_candidate_sets
from repro.rng import ensure_rng

__all__ = ["MatrixFactorizationModel"]


class MatrixFactorizationModel(Recommender):
    """MF model with explicit user and item factor matrices.

    Parameters
    ----------
    num_users, num_items:
        Sizes of the factor matrices.
    num_factors:
        Dimensionality ``k`` of the feature vectors (paper default 32).
    init_scale:
        Standard deviation of the Gaussian initialisation.
    rng:
        Randomness for initialisation.
    """

    def __init__(
        self,
        num_users: int,
        num_items: int,
        num_factors: int = 32,
        init_scale: float = 0.01,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if num_users <= 0 or num_items <= 0:
            raise ModelError("num_users and num_items must be positive")
        if num_factors <= 0:
            raise ModelError("num_factors must be positive")
        if init_scale <= 0:
            raise ModelError("init_scale must be positive")
        generator = ensure_rng(rng)
        self._num_users = int(num_users)
        self._num_items = int(num_items)
        self._num_factors = int(num_factors)
        self.user_factors = generator.normal(0.0, init_scale, size=(num_users, num_factors))
        self.item_factors = generator.normal(0.0, init_scale, size=(num_items, num_factors))

    @classmethod
    def from_factors(
        cls, user_factors: np.ndarray, item_factors: np.ndarray
    ) -> "MatrixFactorizationModel":
        """A model wrapping existing factor matrices, without drawing RNG.

        The serving layer rebuilds a scorer around an immutable
        :class:`~repro.serving.FactorSnapshot`; routing that through
        ``__init__`` would burn generator draws (and copy) for factors that
        are immediately replaced.  The given arrays are adopted as-is (no
        copy), so read-only snapshot views stay read-only — every scoring
        path only reads them.
        """
        user_factors = np.asarray(user_factors, dtype=np.float64)
        item_factors = np.asarray(item_factors, dtype=np.float64)
        if user_factors.ndim != 2 or item_factors.ndim != 2:
            raise ModelError(
                "factor matrices must be 2-D, got shapes "
                f"{user_factors.shape} and {item_factors.shape}"
            )
        if user_factors.shape[1] != item_factors.shape[1]:
            raise ModelError(
                "user and item factors must share the feature dimension, got "
                f"{user_factors.shape} and {item_factors.shape}"
            )
        if min(user_factors.shape[0], item_factors.shape[0], user_factors.shape[1]) <= 0:
            raise ModelError("factor matrices must be non-empty")
        model = cls.__new__(cls)
        model._num_users = int(user_factors.shape[0])
        model._num_items = int(item_factors.shape[0])
        model._num_factors = int(user_factors.shape[1])
        model.user_factors = user_factors
        model.item_factors = item_factors
        return model

    # ------------------------------------------------------------------ #
    # Recommender interface
    # ------------------------------------------------------------------ #
    @property
    def num_users(self) -> int:
        return self._num_users

    @property
    def num_items(self) -> int:
        return self._num_items

    @property
    def num_factors(self) -> int:
        return self._num_factors

    # ------------------------------------------------------------------ #
    # ScorerProtocol surface (id-based)
    # ------------------------------------------------------------------ #
    @property
    def n_users(self) -> int:
        """Protocol alias of :attr:`num_users`."""
        return self._num_users

    @property
    def n_items(self) -> int:
        """Protocol alias of :attr:`num_items`."""
        return self._num_items

    def score(self, user: int, items: np.ndarray | None = None) -> np.ndarray:
        """Scores of ``items`` (all items if ``None``) for a stored user id."""
        return self.score_user(int(user), items)

    def score_items(self, user_vector: np.ndarray, items: np.ndarray | None = None) -> np.ndarray:
        """Predicted scores ``u . v_j`` for the requested items."""
        user_vector = np.asarray(user_vector, dtype=np.float64)
        if user_vector.shape != (self._num_factors,):
            raise ModelError(
                f"user_vector must have shape ({self._num_factors},), got {user_vector.shape}"
            )
        if items is None:
            return self.item_factors @ user_vector
        return self.item_factors[np.asarray(items, dtype=np.int64)] @ user_vector

    def score_block(self, users: np.ndarray, /) -> np.ndarray:
        """Stacked scores ``U[users] V^T`` for a 1-D block of user *ids*.

        One matrix product replaces ``B`` :meth:`score_items` calls; this is
        the scoring primitive of the vectorized evaluation engine and the
        serving layer (:class:`~repro.models.base.ScorerProtocol`).  The
        floats are bit-identical to the historical vector-based call
        ``score_block(self.user_factors[users])`` — same gather, same GEMM.
        """
        users = np.asarray(users, dtype=np.int64)
        if users.ndim != 1:
            raise ModelError(f"users must be a 1-D array of user ids, got shape {users.shape}")
        if users.size and (int(users.min()) < 0 or int(users.max()) >= self._num_users):
            raise ModelError(f"user ids out of range [0, {self._num_users})")
        return self.user_factors[users] @ self.item_factors.T

    def score_candidates(self, users: np.ndarray, candidate_items: np.ndarray, /) -> np.ndarray:
        """``(B, C)`` scores of per-user candidate sets, without the full GEMM.

        Row ``b`` scores user ``users[b]`` on its own candidate row: one
        ``einsum`` over the gathered ``U[users]`` and ``V[candidate_items]``
        — ``B * C * k`` multiply-adds instead of the ``B * n_items * k`` of
        :meth:`score_block`.  This is the
        :class:`~repro.models.base.CandidateScorerProtocol` surface the
        sampled evaluation protocol's ``eval_path="candidates"`` dispatches
        through.
        """
        users, candidate_items = check_candidate_sets(
            users, candidate_items, n_users=self._num_users, n_items=self._num_items
        )
        return np.einsum(
            "bf,bcf->bc",
            self.user_factors[users],
            self.item_factors[candidate_items],
        )

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    def score_user(self, user: int, items: np.ndarray | None = None) -> np.ndarray:
        """Scores for the stored feature vector of ``user``."""
        self._check_user(user)
        return self.score_items(self.user_factors[user], items)

    def score_matrix(self, users: np.ndarray | None = None) -> np.ndarray:
        """Dense score matrix ``U V^T`` for the requested users."""
        factors = self.user_factors if users is None else self.user_factors[np.asarray(users)]
        return factors @ self.item_factors.T

    def recommend_for_user(
        self, user: int, k: int, exclude_items: np.ndarray | None = None
    ) -> np.ndarray:
        """Top-``k`` recommendation for a stored user."""
        self._check_user(user)
        return self.recommend(self.user_factors[user], k, exclude_items)

    def copy(self) -> "MatrixFactorizationModel":
        """Deep copy of the model (used to snapshot server state)."""
        clone = MatrixFactorizationModel(
            self._num_users, self._num_items, self._num_factors, rng=0
        )
        clone.user_factors = self.user_factors.copy()
        clone.item_factors = self.item_factors.copy()
        return clone

    def _check_user(self, user: int) -> None:
        if user < 0 or user >= self._num_users:
            raise ModelError(f"user id {user} out of range [0, {self._num_users})")

    def __repr__(self) -> str:
        return (
            f"MatrixFactorizationModel(users={self._num_users}, items={self._num_items}, "
            f"factors={self._num_factors})"
        )
