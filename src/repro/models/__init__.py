"""Recommender substrate: matrix factorization, losses and scorers.

The paper's base recommender is matrix factorization (MF) trained with the
Bayesian Personalized Ranking (BPR) loss (Section III-A).  This subpackage
implements that model with hand-derived analytic gradients on NumPy, plus an
optional learnable interaction function (a small MLP scorer) demonstrating
the paper's claim that the attack generalises to deep recommenders.
"""

from repro.models.base import Recommender, ScorerProtocol
from repro.models.losses import (
    bpr_coefficients_batched,
    bpr_loss,
    bpr_loss_and_gradients,
    bpr_loss_and_gradients_batched,
    BatchedBPRCoefficients,
    BatchedBPRGradients,
    BPRGradients,
    sigmoid,
)
from repro.models.mf import MatrixFactorizationModel
from repro.models.neural import MLPRecommender, MLPScorer

__all__ = [
    "Recommender",
    "ScorerProtocol",
    "MatrixFactorizationModel",
    "MLPScorer",
    "MLPRecommender",
    "BPRGradients",
    "BatchedBPRGradients",
    "BatchedBPRCoefficients",
    "bpr_loss",
    "bpr_loss_and_gradients",
    "bpr_loss_and_gradients_batched",
    "bpr_coefficients_batched",
    "sigmoid",
]
