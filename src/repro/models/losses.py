"""Bayesian Personalized Ranking loss and its analytic gradients.

The base recommender is trained by minimising, per user,

    L_rec_i = - sum_{(j, k) in V_i}  ln sigma(x_ij - x_ik)        (Eq. 4)

where ``x_ij = u_i . v_j`` for matrix factorization.  The gradients used by
both benign clients and the attacker's user-matrix approximation are

    dL/du_i = - sum  sigma(-x_ijk) (v_j - v_k)
    dL/dv_j = - sigma(-x_ijk) u_i          (positive item)
    dL/dv_k = + sigma(-x_ijk) u_i          (negative item)

These closed forms are what a PyTorch autograd implementation would compute;
tests cross-check them against finite differences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError

__all__ = ["sigmoid", "bpr_loss", "bpr_loss_and_gradients", "BPRGradients"]


def sigmoid(x: np.ndarray | float) -> np.ndarray | float:
    """Numerically stable logistic sigmoid."""
    return 0.5 * (1.0 + np.tanh(0.5 * np.asarray(x, dtype=np.float64)))


def _log_sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(sigmoid(x))``."""
    x = np.asarray(x, dtype=np.float64)
    return np.where(x >= 0, -np.log1p(np.exp(-x)), x - np.log1p(np.exp(x)))


@dataclass(frozen=True)
class BPRGradients:
    """Gradients of the per-user BPR loss.

    Attributes
    ----------
    loss:
        Value of the loss ``L_rec_i``.
    grad_user:
        Gradient with respect to the user feature vector, shape ``(k,)``.
    item_ids:
        Ids of the items whose rows of ``V`` receive non-zero gradient
        (the union of the positive and negative items, deduplicated).
    grad_items:
        Gradient rows aligned with ``item_ids``, shape ``(len(item_ids), k)``.
    """

    loss: float
    grad_user: np.ndarray
    item_ids: np.ndarray
    grad_items: np.ndarray

    def as_dense_item_gradient(self, num_items: int) -> np.ndarray:
        """Scatter the item gradient rows into a dense ``(num_items, k)`` array."""
        dense = np.zeros((num_items, self.grad_items.shape[1]), dtype=np.float64)
        np.add.at(dense, self.item_ids, self.grad_items)
        return dense


def bpr_loss(
    user_vector: np.ndarray,
    item_factors: np.ndarray,
    positives: np.ndarray,
    negatives: np.ndarray,
) -> float:
    """Value of the per-user BPR loss for paired positives/negatives."""
    positives, negatives = _validate_pairs(positives, negatives)
    if positives.shape[0] == 0:
        return 0.0
    pos_scores = item_factors[positives] @ user_vector
    neg_scores = item_factors[negatives] @ user_vector
    return float(-np.sum(_log_sigmoid(pos_scores - neg_scores)))


def bpr_loss_and_gradients(
    user_vector: np.ndarray,
    item_factors: np.ndarray,
    positives: np.ndarray,
    negatives: np.ndarray,
    l2_reg: float = 0.0,
) -> BPRGradients:
    """Loss and gradients of the per-user BPR objective.

    Parameters
    ----------
    user_vector:
        The user's private feature vector ``u_i``, shape ``(k,)``.
    item_factors:
        The shared item matrix ``V``, shape ``(num_items, k)``.
    positives, negatives:
        Aligned arrays of positive / negative item ids (the pairs of Eq. 4).
    l2_reg:
        Optional L2 regularisation applied to the user vector and the touched
        item rows.
    """
    positives, negatives = _validate_pairs(positives, negatives)
    k = user_vector.shape[0]
    if positives.shape[0] == 0:
        return BPRGradients(
            loss=0.0,
            grad_user=np.zeros(k, dtype=np.float64),
            item_ids=np.empty(0, dtype=np.int64),
            grad_items=np.empty((0, k), dtype=np.float64),
        )

    pos_vectors = item_factors[positives]
    neg_vectors = item_factors[negatives]
    margins = (pos_vectors - neg_vectors) @ user_vector
    loss = float(-np.sum(_log_sigmoid(margins)))
    # d/dx of -ln sigma(x) is -(1 - sigma(x)) = -sigma(-x)
    coefficients = -sigmoid(-margins)

    grad_user = (coefficients[:, None] * (pos_vectors - neg_vectors)).sum(axis=0)
    grad_pos = coefficients[:, None] * user_vector[None, :]
    grad_neg = -coefficients[:, None] * user_vector[None, :]

    item_ids = np.concatenate([positives, negatives])
    grad_rows = np.concatenate([grad_pos, grad_neg], axis=0)
    item_ids, grad_rows = _accumulate_rows(item_ids, grad_rows)

    if l2_reg > 0.0:
        loss += l2_reg * (float(user_vector @ user_vector) + float(np.sum(item_factors[item_ids] ** 2)))
        grad_user = grad_user + 2.0 * l2_reg * user_vector
        grad_rows = grad_rows + 2.0 * l2_reg * item_factors[item_ids]

    return BPRGradients(loss=loss, grad_user=grad_user, item_ids=item_ids, grad_items=grad_rows)


def _validate_pairs(positives: np.ndarray, negatives: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    positives = np.asarray(positives, dtype=np.int64)
    negatives = np.asarray(negatives, dtype=np.int64)
    if positives.shape != negatives.shape:
        raise ModelError(
            f"positives and negatives must be aligned, got shapes {positives.shape} and {negatives.shape}"
        )
    return positives, negatives


def _accumulate_rows(item_ids: np.ndarray, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sum gradient rows belonging to the same item id."""
    unique_ids, inverse = np.unique(item_ids, return_inverse=True)
    accumulated = np.zeros((unique_ids.shape[0], rows.shape[1]), dtype=np.float64)
    np.add.at(accumulated, inverse, rows)
    return unique_ids, accumulated
