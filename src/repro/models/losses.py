"""Bayesian Personalized Ranking loss and its analytic gradients.

The base recommender is trained by minimising, per user,

    L_rec_i = - sum_{(j, k) in V_i}  ln sigma(x_ij - x_ik)        (Eq. 4)

where ``x_ij = u_i . v_j`` for matrix factorization.  The gradients used by
both benign clients and the attacker's user-matrix approximation are

    dL/du_i = - sum  sigma(-x_ijk) (v_j - v_k)
    dL/dv_j = - sigma(-x_ijk) u_i          (positive item)
    dL/dv_k = + sigma(-x_ijk) u_i          (negative item)

These closed forms are what a PyTorch autograd implementation would compute;
tests cross-check them against finite differences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse as _sparse

from repro.exceptions import ModelError

__all__ = [
    "sigmoid",
    "bpr_loss",
    "bpr_loss_and_gradients",
    "bpr_loss_and_gradients_batched",
    "bpr_coefficients_batched",
    "BPRGradients",
    "BatchedBPRGradients",
    "BatchedBPRCoefficients",
    "fold_by_key",
    "segment_sum",
]


def sigmoid(x: np.ndarray | float) -> np.ndarray | float:
    """Numerically stable logistic sigmoid."""
    return 0.5 * (1.0 + np.tanh(0.5 * np.asarray(x, dtype=np.float64)))


def _log_sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(sigmoid(x))``."""
    x = np.asarray(x, dtype=np.float64)
    return np.where(x >= 0, -np.log1p(np.exp(-x)), x - np.log1p(np.exp(x)))


@dataclass(frozen=True)
class BPRGradients:
    """Gradients of the per-user BPR loss.

    Attributes
    ----------
    loss:
        Value of the loss ``L_rec_i``.
    grad_user:
        Gradient with respect to the user feature vector, shape ``(k,)``.
    item_ids:
        Ids of the items whose rows of ``V`` receive non-zero gradient
        (the union of the positive and negative items, deduplicated).
    grad_items:
        Gradient rows aligned with ``item_ids``, shape ``(len(item_ids), k)``.
    """

    loss: float
    grad_user: np.ndarray
    item_ids: np.ndarray
    grad_items: np.ndarray

    def as_dense_item_gradient(self, num_items: int) -> np.ndarray:
        """Scatter the item gradient rows into a dense ``(num_items, k)`` array."""
        dense = np.zeros((num_items, self.grad_items.shape[1]), dtype=np.float64)
        np.add.at(dense, self.item_ids, self.grad_items)
        return dense


def bpr_loss(
    user_vector: np.ndarray,
    item_factors: np.ndarray,
    positives: np.ndarray,
    negatives: np.ndarray,
) -> float:
    """Value of the per-user BPR loss for paired positives/negatives."""
    positives, negatives = _validate_pairs(positives, negatives)
    if positives.shape[0] == 0:
        return 0.0
    pos_scores = item_factors[positives] @ user_vector
    neg_scores = item_factors[negatives] @ user_vector
    return float(-np.sum(_log_sigmoid(pos_scores - neg_scores)))


def bpr_loss_and_gradients(
    user_vector: np.ndarray,
    item_factors: np.ndarray,
    positives: np.ndarray,
    negatives: np.ndarray,
    l2_reg: float = 0.0,
) -> BPRGradients:
    """Loss and gradients of the per-user BPR objective.

    Parameters
    ----------
    user_vector:
        The user's private feature vector ``u_i``, shape ``(k,)``.
    item_factors:
        The shared item matrix ``V``, shape ``(num_items, k)``.
    positives, negatives:
        Aligned arrays of positive / negative item ids (the pairs of Eq. 4).
    l2_reg:
        Optional L2 regularisation applied to the user vector and the touched
        item rows.
    """
    positives, negatives = _validate_pairs(positives, negatives)
    k = user_vector.shape[0]
    if positives.shape[0] == 0:
        return BPRGradients(
            loss=0.0,
            grad_user=np.zeros(k, dtype=np.float64),
            item_ids=np.empty(0, dtype=np.int64),
            grad_items=np.empty((0, k), dtype=np.float64),
        )

    pos_vectors = item_factors[positives]
    neg_vectors = item_factors[negatives]
    margins = (pos_vectors - neg_vectors) @ user_vector
    loss = float(-np.sum(_log_sigmoid(margins)))
    # d/dx of -ln sigma(x) is -(1 - sigma(x)) = -sigma(-x)
    coefficients = -sigmoid(-margins)

    grad_user = (coefficients[:, None] * (pos_vectors - neg_vectors)).sum(axis=0)
    grad_pos = coefficients[:, None] * user_vector[None, :]
    grad_neg = -coefficients[:, None] * user_vector[None, :]

    item_ids = np.concatenate([positives, negatives])
    grad_rows = np.concatenate([grad_pos, grad_neg], axis=0)
    item_ids, grad_rows = _accumulate_rows(item_ids, grad_rows)

    if l2_reg > 0.0:
        loss += l2_reg * (float(user_vector @ user_vector) + float(np.sum(item_factors[item_ids] ** 2)))
        grad_user = grad_user + 2.0 * l2_reg * user_vector
        grad_rows = grad_rows + 2.0 * l2_reg * item_factors[item_ids]

    return BPRGradients(loss=loss, grad_user=grad_user, item_ids=item_ids, grad_items=grad_rows)


@dataclass(frozen=True)
class BatchedBPRGradients:
    """Gradients of the BPR loss for a whole batch of users at once.

    The per-item gradients come back in the CSR-style layout consumed by
    :class:`repro.federated.updates.SparseRoundUpdates`: segment ``i`` of
    ``item_ids`` / ``grad_rows`` (delimited by ``segment_offsets``) holds user
    ``i``'s touched items, deduplicated and sorted by item id — exactly what
    the per-user :func:`bpr_loss_and_gradients` produces.

    Attributes
    ----------
    losses:
        Per-user loss values, shape ``(num_segments,)``.
    grad_users:
        Per-user gradients of the private vectors, shape ``(num_segments, k)``.
    item_ids:
        Concatenated per-user touched item ids, shape ``(nnz,)``.
    grad_rows:
        Gradient rows aligned with ``item_ids``, shape ``(nnz, k)``.
    segment_offsets:
        Offsets delimiting each user's segment, shape ``(num_segments + 1,)``.
    """

    losses: np.ndarray
    grad_users: np.ndarray
    item_ids: np.ndarray
    grad_rows: np.ndarray
    segment_offsets: np.ndarray


def segment_sum(
    rows: np.ndarray,
    segments: np.ndarray,
    num_segments: int,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Sum ``rows`` (shape ``(n, k)``) into per-segment totals ``(num_segments, k)``.

    When ``weights`` is given, row ``i`` contributes ``weights[i] * rows[i]``
    (folded into the reduction, no scaled temporary).  Backed by a sparse
    indicator-matrix product — by a wide margin the fastest scatter-add
    numpy/scipy offer for the row counts a training round produces.
    """
    num_rows, num_columns = rows.shape
    if num_rows == 0:
        return np.zeros((num_segments, num_columns), dtype=np.float64)
    data = (
        np.ones(num_rows, dtype=np.float64)
        if weights is None
        else np.asarray(weights, dtype=np.float64)
    )
    indicator = _sparse.csr_matrix(
        (
            data,
            np.asarray(segments, dtype=np.int64),
            np.arange(num_rows + 1, dtype=np.int64),
        ),
        shape=(num_rows, num_segments),
    )
    return np.asarray(indicator.T @ np.ascontiguousarray(rows, dtype=np.float64))


def fold_by_key(keys: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sort ``values`` by ``keys`` and sum entries sharing a key.

    ``values`` may be 1-D (scalars per entry) or 2-D (one row per entry).
    Returns ``(unique_keys, folded_values)`` with the keys sorted ascending.
    When every key is distinct — the common case for BPR pairs, whose
    positives and negatives are disjoint per user — the fold is a pure
    permutation and no reduction runs.
    """
    if keys.shape[0] == 0:
        return keys, values
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.empty(sorted_keys.shape[0], dtype=bool)
    boundaries[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundaries[1:])
    if bool(boundaries.all()):
        return sorted_keys, values[order]
    starts = np.flatnonzero(boundaries)
    folded = np.add.reduceat(values[order], starts, axis=0)
    return sorted_keys[starts], folded


@dataclass(frozen=True)
class BatchedBPRCoefficients:
    """The *factored* form of a batch's BPR item gradients.

    The dense gradient row of user ``b`` for item ``j`` is the rank-1 product
    ``c_bj * u_b`` (plus ``2 * l2_reg * v_j`` when regularised), so the whole
    batch's item gradient is fully described by the folded per-(user, item)
    coefficients ``c_bj`` in CSR layout plus the small stacked user matrix —
    the ``(nnz, k)`` row array never has to exist.  This is what
    :class:`repro.federated.updates.FactoredRoundUpdates` stores and what the
    ``sum`` / ``mean`` aggregators consume as a single sparse-matrix product.

    Attributes
    ----------
    losses:
        Per-user loss values, shape ``(num_segments,)``.
    grad_users:
        Per-user gradients of the private vectors, shape ``(num_segments, k)``.
    item_ids:
        Concatenated per-user touched item ids, shape ``(nnz,)`` (sorted
        within each user's segment).
    coefficients:
        Folded per-(user, item) coefficients ``c_bj`` aligned with
        ``item_ids``, shape ``(nnz,)``.
    segment_offsets:
        Offsets delimiting each user's segment, shape ``(num_segments + 1,)``.
    """

    losses: np.ndarray
    grad_users: np.ndarray
    item_ids: np.ndarray
    coefficients: np.ndarray
    segment_offsets: np.ndarray

    @property
    def owners(self) -> np.ndarray:
        """For every coefficient, the segment (user row) it belongs to."""
        num_segments = self.segment_offsets.shape[0] - 1
        return np.repeat(
            np.arange(num_segments, dtype=np.int64), np.diff(self.segment_offsets)
        )


def bpr_coefficients_batched(
    user_vectors: np.ndarray,
    item_factors: np.ndarray,
    segment_ids: np.ndarray,
    positives: np.ndarray,
    negatives: np.ndarray,
    l2_reg: float = 0.0,
) -> BatchedBPRCoefficients:
    """Losses, user gradients and *factored* item gradients for many users.

    Computes everything :func:`bpr_loss_and_gradients_batched` does except the
    materialised ``(nnz, k)`` gradient-row array: the item gradient comes back
    as folded per-(user, item) coefficients (see
    :class:`BatchedBPRCoefficients`).  With ``l2_reg > 0`` the implied row is
    ``c_bj * u_b + 2 * l2_reg * v_j``; the regularisation contributions to the
    losses and user gradients are included here.
    """
    user_vectors = np.asarray(user_vectors, dtype=np.float64)
    positives, negatives = _validate_pairs(positives, negatives)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.shape != positives.shape:
        raise ModelError(
            f"segment_ids must align with the pairs, got shapes {segment_ids.shape} "
            f"and {positives.shape}"
        )
    num_segments, k = user_vectors.shape
    num_items = item_factors.shape[0]
    if positives.shape[0] == 0:
        return BatchedBPRCoefficients(
            losses=np.zeros(num_segments, dtype=np.float64),
            grad_users=np.zeros((num_segments, k), dtype=np.float64),
            item_ids=np.empty(0, dtype=np.int64),
            coefficients=np.empty(0, dtype=np.float64),
            segment_offsets=np.zeros(num_segments + 1, dtype=np.int64),
        )

    # All pairwise scores in one small GEMM: S[b, j] = u_b . v_j.  Gathering
    # margins out of S touches far less memory than gathering the positive and
    # negative item vectors per pair.
    scores = user_vectors @ item_factors.T
    flat_scores = scores.ravel()
    score_base = segment_ids * num_items
    margins = flat_scores[score_base + positives] - flat_scores[score_base + negatives]
    losses = np.bincount(segment_ids, weights=-_log_sigmoid(margins), minlength=num_segments)
    coefficients = -sigmoid(-margins)

    # Fold the per-pair coefficients into per-(user, item) coefficients with a
    # single stable sort over combined keys; within each user the ids come out
    # sorted, matching the per-user np.unique of the reference implementation.
    keys = np.concatenate([score_base + positives, score_base + negatives])
    signed = np.concatenate([coefficients, -coefficients])
    unique_keys, folded = fold_by_key(keys, signed)
    item_ids = unique_keys % num_items
    owners = unique_keys // num_items
    segment_offsets = np.searchsorted(owners, np.arange(num_segments + 1))

    # grad_user_b = sum_j c_bj * v_j — one sparse-matrix product against V
    # using the CSR layout just built.
    coefficient_matrix = _sparse.csr_matrix(
        (folded, item_ids, segment_offsets), shape=(num_segments, num_items)
    )
    grad_users = np.asarray(coefficient_matrix @ item_factors)

    if l2_reg > 0.0:
        touched = item_factors[item_ids]
        active = np.bincount(segment_ids, minlength=num_segments) > 0
        grad_users[active] += 2.0 * l2_reg * user_vectors[active]
        user_sq = np.einsum("ij,ij->i", user_vectors, user_vectors)
        item_sq = np.bincount(
            owners, weights=np.einsum("ij,ij->i", touched, touched), minlength=num_segments
        )
        losses = losses + np.where(active, l2_reg * user_sq, 0.0) + l2_reg * item_sq

    return BatchedBPRCoefficients(
        losses=losses,
        grad_users=grad_users,
        item_ids=item_ids,
        coefficients=folded,
        segment_offsets=segment_offsets,
    )


def bpr_loss_and_gradients_batched(
    user_vectors: np.ndarray,
    item_factors: np.ndarray,
    segment_ids: np.ndarray,
    positives: np.ndarray,
    negatives: np.ndarray,
    l2_reg: float = 0.0,
) -> BatchedBPRGradients:
    """Losses and gradients of the BPR objective for many users in one shot.

    Semantically equivalent to calling :func:`bpr_loss_and_gradients` once per
    user and concatenating the results (up to floating-point summation order),
    but computed with stacked numpy operations: one GEMM for all pairwise
    scores, one margin/coefficient computation over every ``(j, k)`` pair, one
    sort that folds the coefficients per (user, item), and one sparse-matrix
    product for the user-vector gradients.  A user's gradient row for positive
    ``j`` is ``coeff * u`` and for negative ``l`` is ``-coeff * u``, so the
    sorted rows are materialised directly from the folded coefficients
    computed by :func:`bpr_coefficients_batched` — callers that can consume
    the factored form directly should use that function instead and skip the
    ``(nnz, k)`` row array entirely.

    Parameters
    ----------
    user_vectors:
        Stacked private user vectors, shape ``(num_segments, k)``.
    item_factors:
        The shared item matrix ``V``, shape ``(num_items, k)``.
    segment_ids:
        For every (positive, negative) pair, the row of ``user_vectors`` it
        belongs to, shape ``(n,)``.  Must be sorted or at least grouped per
        user for the output segments to align with ``user_vectors`` order
        (the round engine always builds them sorted).
    positives, negatives:
        Aligned item-id arrays of the pairs of Eq. (4), shape ``(n,)``.
    l2_reg:
        Optional L2 regularisation (same convention as the per-user form).
    """
    user_vectors = np.asarray(user_vectors, dtype=np.float64)
    factored = bpr_coefficients_batched(
        user_vectors, item_factors, segment_ids, positives, negatives, l2_reg=l2_reg
    )
    grad_rows = user_vectors[factored.owners]
    grad_rows *= factored.coefficients[:, None]
    if l2_reg > 0.0:
        grad_rows = grad_rows + 2.0 * l2_reg * item_factors[factored.item_ids]
    return BatchedBPRGradients(
        losses=factored.losses,
        grad_users=factored.grad_users,
        item_ids=factored.item_ids,
        grad_rows=grad_rows,
        segment_offsets=factored.segment_offsets,
    )


def _validate_pairs(positives: np.ndarray, negatives: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    positives = np.asarray(positives, dtype=np.int64)
    negatives = np.asarray(negatives, dtype=np.int64)
    if positives.shape != negatives.shape:
        raise ModelError(
            f"positives and negatives must be aligned, got shapes {positives.shape} and {negatives.shape}"
        )
    return positives, negatives


def _accumulate_rows(item_ids: np.ndarray, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sum gradient rows belonging to the same item id."""
    unique_ids, inverse = np.unique(item_ids, return_inverse=True)
    accumulated = np.zeros((unique_ids.shape[0], rows.shape[1]), dtype=np.float64)
    np.add.at(accumulated, inverse, rows)
    return unique_ids, accumulated
