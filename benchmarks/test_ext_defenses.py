"""Benchmark (extension): FedRecAttack against robust-aggregation defenses.

The paper's future-work section names byzantine-robust aggregation (Krum,
trimmed mean, median) as candidate defenses and argues they fit FR poorly
because benign gradients already vary enormously across users.  This
extension experiment measures FedRecAttack against those rules: the robust
rules reduce the attack but pay for it with recommendation accuracy, because
they also discard most of the benign signal.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import BENCH_PROFILE, defense_table

AGGREGATORS = ("sum", "median", "trimmed_mean", "krum", "norm_bounding")


def test_defense_aggregators(benchmark, save_result):
    table = run_once(benchmark, defense_table, BENCH_PROFILE, AGGREGATORS)
    save_result("ext_defense_aggregators", table.to_text())

    raw = table.raw
    # Under the paper's plain sum rule the attack is highly effective.
    assert raw["sum"]["ER@10"] > 0.5
    # Norm bounding alone does not stop the attack: its uploads already
    # respect the row-norm budget C.
    assert raw["norm_bounding"]["ER@10"] > 0.3
    # The strongly robust rules (median / Krum) do suppress the poisoned
    # gradient relative to the undefended run...
    assert min(raw["median"]["ER@10"], raw["krum"]["ER@10"]) < raw["sum"]["ER@10"]
    # ...but they also hurt the recommender itself: accuracy under median/Krum
    # does not beat the undefended run.
    assert raw["median"]["HR@10"] <= raw["sum"]["HR@10"] + 0.05
    assert raw["krum"]["HR@10"] <= raw["sum"]["HR@10"] + 0.05
