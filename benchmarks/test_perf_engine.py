"""Benchmark: loop vs vectorized round-engine throughput.

Two measurements, both on synthetic datasets with the exact shapes of the
paper's evaluation datasets (Table II) and the protocol defaults (k = 32,
256 clients per round):

* ``test_perf_engine`` — benign federated rounds at the MovieLens-100K,
  MovieLens-1M and Steam-200K shapes, measuring rounds/sec for both engines
  so the perf trajectory is tracked across PRs.  The vectorized engine must
  be at least 3x faster at the ml-100k gate shape.
* ``test_perf_attack_rounds`` — attack-enabled rounds (FedRecAttack with its
  user-matrix approximation refresh and poisoned-gradient construction every
  round) at the ml-100k shape.  The vectorized attacker pipeline must be at
  least 3x faster than the per-user loop reference.

Both engines consume identical per-client random streams, so the speedups
are free of any accuracy trade-off (see
``tests/test_federated_engine_equivalence.py``).

Results land in ``benchmarks/results/perf_engine.json`` / ``.txt`` and
``benchmarks/results/perf_attack.json`` / ``.txt``.
"""

from __future__ import annotations

import json
import time

import numpy as np

from conftest import RESULTS_DIR, run_once

from repro.attacks.fedrecattack import FedRecAttack, FedRecAttackConfig
from repro.data.presets import get_preset
from repro.data.public import sample_public_interactions
from repro.data.synthetic import SyntheticConfig, generate_synthetic_dataset
from repro.federated.config import FederatedConfig
from repro.federated.simulation import FederatedSimulation
from repro.rng import SeedSequenceFactory

NUM_FACTORS = 32
CLIENTS_PER_ROUND = 256
MIN_SPEEDUP = 3.0
GATE_SHAPE = "ml-100k"

#: (measured rounds, interleaved repeats) per dataset shape.  The larger
#: shapes run fewer repeats so the whole sweep stays laptop-friendly; the
#: ml-100k gate shape keeps the most careful measurement.
SHAPES: dict[str, tuple[int, int]] = {
    "ml-100k": (8, 3),
    "ml-1m": (8, 2),
    "steam-200k": (8, 2),
}

ENGINES = ("loop", "vectorized")


def _build_dataset(name: str):
    preset = get_preset(name)
    return preset, generate_synthetic_dataset(
        SyntheticConfig.from_preset(preset),
        SeedSequenceFactory(2022).generator(f"perf-data-{name}"),
    )


def _build_simulation(dataset, engine: str, **kwargs) -> FederatedSimulation:
    config = FederatedConfig(
        num_factors=NUM_FACTORS,
        learning_rate=0.01,
        clients_per_round=CLIENTS_PER_ROUND,
        num_epochs=1,
        engine=engine,
    )
    return FederatedSimulation(
        train=dataset,
        config=config,
        test_items=None,
        seed=SeedSequenceFactory(2022),
        **kwargs,
    )


def _round_batches(simulation: FederatedSimulation, num_rounds: int) -> list[np.ndarray]:
    """The first ``num_rounds`` client batches, drawing fresh epochs as needed."""
    batches: list[np.ndarray] = []
    while len(batches) < num_rounds:
        order = simulation._schedule_rng.permutation(simulation._all_client_ids)
        for start in range(0, order.shape[0], CLIENTS_PER_ROUND):
            batches.append(order[start : start + CLIENTS_PER_ROUND])
            if len(batches) == num_rounds:
                break
    return batches


def _time_rounds(simulation: FederatedSimulation, num_rounds: int) -> float:
    """Wall-clock seconds for ``num_rounds`` further training rounds."""
    batches = _round_batches(simulation, num_rounds)
    start = time.perf_counter()
    for batch in batches:
        simulation._run_round(batch)
    return time.perf_counter() - start


def _throughput(
    simulations: dict[str, FederatedSimulation], measured_rounds: int, repeats: int
) -> dict:
    """Interleaved best-of-``repeats`` rounds/sec for every engine.

    Each pass warms up first (allocators, caches, lazy imports — and, for
    attack runs, the expensive initial approximation epochs).  The engines
    are interleaved and each keeps its best pass, so scheduler hiccups and
    CPU-frequency drift on shared boxes cannot skew the ratio.
    """
    for simulation in simulations.values():
        _time_rounds(simulation, 2)
    best = {engine: float("inf") for engine in simulations}
    for _ in range(repeats):
        for engine, simulation in simulations.items():
            best[engine] = min(best[engine], _time_rounds(simulation, measured_rounds))
    loop_rps = measured_rounds / best["loop"]
    vectorized_rps = measured_rounds / best["vectorized"]
    return {
        "num_factors": NUM_FACTORS,
        "clients_per_round": CLIENTS_PER_ROUND,
        "measured_rounds": measured_rounds,
        "loop_rounds_per_sec": loop_rps,
        "vectorized_rounds_per_sec": vectorized_rps,
        "speedup": vectorized_rps / loop_rps,
    }


def _measure_shape(name: str, measured_rounds: int, repeats: int) -> dict:
    preset, dataset = _build_dataset(name)
    simulations = {engine: _build_simulation(dataset, engine) for engine in ENGINES}
    return {
        "dataset": preset.name,
        "num_users": preset.num_users,
        "num_items": preset.num_items,
        "num_interactions": preset.num_interactions,
        **_throughput(simulations, measured_rounds, repeats),
    }


def _measure_engines() -> dict:
    return {
        "shapes": [
            _measure_shape(name, measured_rounds, repeats)
            for name, (measured_rounds, repeats) in SHAPES.items()
        ]
    }


def test_perf_engine(benchmark, save_result):
    payload = run_once(benchmark, _measure_engines)

    (RESULTS_DIR / "perf_engine.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    lines = ["Round-engine throughput (synthetic paper shapes, k=32, 256 clients/round)"]
    for shape in payload["shapes"]:
        lines += [
            f"{shape['dataset']} ({shape['num_users']} users / {shape['num_items']} items)",
            f"  loop engine:       {shape['loop_rounds_per_sec']:8.2f} rounds/sec",
            f"  vectorized engine: {shape['vectorized_rounds_per_sec']:8.2f} rounds/sec",
            f"  speedup:           {shape['speedup']:8.2f}x",
        ]
    save_result("perf_engine", "\n".join(lines))

    gate = next(s for s in payload["shapes"] if s["dataset"] == GATE_SHAPE)
    assert gate["speedup"] >= MIN_SPEEDUP, (
        f"vectorized engine is only {gate['speedup']:.2f}x faster than the loop engine "
        f"at the {GATE_SHAPE} shape (required: {MIN_SPEEDUP}x)"
    )


# --------------------------------------------------------------------------- #
# Attack-enabled rounds
# --------------------------------------------------------------------------- #

ATTACK_MEASURED_ROUNDS = 8
ATTACK_REPEATS = 2
ATTACK_XI = 0.01
ATTACK_RHO = 0.05


def _build_attack_simulation(dataset, public, engine: str) -> FederatedSimulation:
    popularity = dataset.item_popularity
    target_items = np.argsort(popularity, kind="stable")[:5].astype(np.int64)
    attack = FedRecAttack(
        public,
        FedRecAttackConfig(approx_epochs_initial=5, approx_epochs_per_round=2),
    )
    num_malicious = int(np.ceil(ATTACK_RHO * dataset.num_users))
    return _build_simulation(
        dataset,
        engine,
        target_items=target_items,
        attack=attack,
        num_malicious=num_malicious,
    )


def _measure_attack() -> dict:
    preset, dataset = _build_dataset(GATE_SHAPE)
    public = sample_public_interactions(
        dataset, ATTACK_XI, rng=SeedSequenceFactory(2022).generator("perf-public")
    )
    simulations = {
        engine: _build_attack_simulation(dataset, public, engine) for engine in ENGINES
    }
    return {
        "dataset": preset.name,
        "attack": "FedRecAttack",
        "xi": ATTACK_XI,
        "rho": ATTACK_RHO,
        "active_public_users": int(public.users_with_public_interactions().shape[0]),
        **_throughput(simulations, ATTACK_MEASURED_ROUNDS, ATTACK_REPEATS),
    }


def test_perf_attack_rounds(benchmark, save_result):
    payload = run_once(benchmark, _measure_attack)

    (RESULTS_DIR / "perf_attack.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    save_result(
        "perf_attack",
        "\n".join(
            [
                "Attack-enabled round throughput (FedRecAttack, synthetic ML-100K shape,",
                f"xi={ATTACK_XI}, rho={ATTACK_RHO}, k={NUM_FACTORS}, "
                f"{CLIENTS_PER_ROUND} clients/round)",
                f"  loop attacker:       {payload['loop_rounds_per_sec']:8.2f} rounds/sec",
                f"  vectorized attacker: {payload['vectorized_rounds_per_sec']:8.2f} rounds/sec",
                f"  speedup:             {payload['speedup']:8.2f}x",
            ]
        ),
    )

    assert payload["speedup"] >= MIN_SPEEDUP, (
        f"vectorized attacker pipeline is only {payload['speedup']:.2f}x faster than the "
        f"loop attacker (required: {MIN_SPEEDUP}x)"
    )
