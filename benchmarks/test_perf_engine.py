"""Benchmark: round-engine and sampler throughput across configurations.

Three measurements, all on synthetic datasets with the exact shapes of the
paper's evaluation datasets (Table II) and the protocol defaults (k = 32,
256 clients per round):

* ``test_perf_engine`` — benign federated rounds at the MovieLens-100K,
  MovieLens-1M and Steam-200K shapes, measuring rounds/sec for three
  configurations: the ``loop`` reference, the ``vectorized`` engine
  (permutation sampler, bit-identical realizations to the reference), and
  ``batched_fused`` (vectorized engine + batched sampler + cross-round
  fusion — the sparse-dataset configuration).  Gates: vectorized ≥ 3x at the
  ml-100k shape, batched_fused ≥ 3x at the steam-200k shape (whose sparse
  per-user activity makes plain vectorization the weakest, ~2x).
* ``test_perf_attack_rounds`` — attack-enabled rounds (FedRecAttack with its
  user-matrix approximation refresh and poisoned-gradient construction every
  round) at the ml-100k shape, for the same three configurations (fusion off:
  the gate isolates the sampler's effect on the attacker pipeline).  Gates:
  vectorized ≥ 3x (the PR 2 contract) and batched strictly above the
  measured vectorized throughput (the approximation's per-user permutation
  draws were the dominant remaining cost).
* ``test_perf_engine_smoke`` — a fast (seconds) loop-vs-vectorized gate at
  the ml-100k shape, run by CI on every push so speedup regressions fail the
  build without paying for the full sweep.

``loop`` and ``vectorized`` consume identical per-client random streams, so
that speedup is free of any accuracy trade-off (see
``tests/test_federated_engine_equivalence.py``); ``batched_fused`` is an
exact sampler with a different RNG contract plus delayed within-window
gradients, re-validated qualitatively by the table/figure gates under
``REPRO_BENCH_SAMPLER=batched``.

Results land in ``benchmarks/results/perf_engine.json`` / ``.txt`` and
``benchmarks/results/perf_attack.json`` / ``.txt``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from conftest import RESULTS_DIR, run_once

from repro.attacks.fedrecattack import FedRecAttack, FedRecAttackConfig
from repro.data.presets import get_preset, scaled_preset
from repro.data.public import sample_public_interactions
from repro.data.synthetic import SyntheticConfig, generate_synthetic_dataset
from repro.federated.config import FederatedConfig
from repro.federated.simulation import FederatedSimulation
from repro.rng import SeedSequenceFactory

NUM_FACTORS = 32
CLIENTS_PER_ROUND = 256
MIN_SPEEDUP = 3.0
GATE_SHAPE = "ml-100k"
SPARSE_GATE_SHAPE = "steam-200k"
FUSE_ROUNDS = 4

#: (measured rounds, interleaved repeats) per dataset shape.  The larger
#: shapes run fewer repeats so the whole sweep stays laptop-friendly; the
#: ml-100k gate shape keeps the most careful measurement.
SHAPES: dict[str, tuple[int, int]] = {
    "ml-100k": (8, 3),
    "ml-1m": (8, 2),
    "steam-200k": (8, 2),
}

#: label -> FederatedConfig overrides of every measured configuration.
VARIANTS: dict[str, dict] = {
    "loop": {"engine": "loop"},
    "vectorized": {"engine": "vectorized"},
    "batched_fused": {
        "engine": "vectorized",
        "sampler": "batched",
        "fuse_rounds": FUSE_ROUNDS,
    },
}

ATTACK_VARIANTS: dict[str, dict] = {
    "loop": {"engine": "loop"},
    "vectorized": {"engine": "vectorized"},
    "batched": {"engine": "vectorized", "sampler": "batched"},
}


def _build_dataset(name: str):
    preset = get_preset(name)
    return preset, generate_synthetic_dataset(
        SyntheticConfig.from_preset(preset),
        SeedSequenceFactory(2022).generator(f"perf-data-{name}"),
    )


def _build_simulation(dataset, variant: dict, **kwargs) -> FederatedSimulation:
    config = FederatedConfig(
        num_factors=NUM_FACTORS,
        learning_rate=0.01,
        clients_per_round=CLIENTS_PER_ROUND,
        num_epochs=1,
        **variant,
    )
    return FederatedSimulation(
        train=dataset,
        config=config,
        test_items=None,
        seed=SeedSequenceFactory(2022),
        **kwargs,
    )


def _round_batches(simulation: FederatedSimulation, num_rounds: int) -> list[np.ndarray]:
    """The first ``num_rounds`` client batches, drawing fresh epochs as needed."""
    batches: list[np.ndarray] = []
    while len(batches) < num_rounds:
        order = simulation._schedule_rng.permutation(simulation._all_client_ids)
        for start in range(0, order.shape[0], CLIENTS_PER_ROUND):
            batches.append(order[start : start + CLIENTS_PER_ROUND])
            if len(batches) == num_rounds:
                break
    return batches


def _time_rounds(simulation: FederatedSimulation, num_rounds: int) -> float:
    """Wall-clock seconds for ``num_rounds`` further training rounds.

    Configurations with a fusion window run the same rounds through the fused
    scheduler in windows of ``fuse_rounds`` (the same grouping the epoch
    scheduler uses), so the measurement exercises the production code path.
    """
    batches = _round_batches(simulation, num_rounds)
    fuse = simulation.config.fuse_rounds
    start = time.perf_counter()
    if fuse > 1 and simulation.config.engine == "vectorized":
        for window_start in range(0, len(batches), fuse):
            simulation._run_fused_rounds(batches[window_start : window_start + fuse])
    else:
        for batch in batches:
            simulation._run_round(batch)
    return time.perf_counter() - start


def _throughput(
    simulations: dict[str, FederatedSimulation], measured_rounds: int, repeats: int
) -> dict:
    """Interleaved best-of-``repeats`` rounds/sec for every configuration.

    Each pass warms up first (allocators, caches, lazy imports — and, for
    attack runs, the expensive initial approximation epochs).  The
    configurations are interleaved and each keeps its best pass, so scheduler
    hiccups and CPU-frequency drift on shared boxes cannot skew the ratios.
    """
    for simulation in simulations.values():
        _time_rounds(simulation, 2)
    best = {label: float("inf") for label in simulations}
    for _ in range(repeats):
        for label, simulation in simulations.items():
            best[label] = min(best[label], _time_rounds(simulation, measured_rounds))
    payload: dict = {
        "num_factors": NUM_FACTORS,
        "clients_per_round": CLIENTS_PER_ROUND,
        "measured_rounds": measured_rounds,
    }
    loop_rps = measured_rounds / best["loop"]
    for label in simulations:
        rps = measured_rounds / best[label]
        payload[f"{label}_rounds_per_sec"] = rps
        if label != "loop":
            payload[f"{label}_speedup"] = rps / loop_rps
    # Back-compat key used by earlier perf records and the smoke gate.
    payload["speedup"] = payload["vectorized_speedup"]
    return payload


def _measure_shape(name: str, measured_rounds: int, repeats: int) -> dict:
    preset, dataset = _build_dataset(name)
    simulations = {
        label: _build_simulation(dataset, variant) for label, variant in VARIANTS.items()
    }
    return {
        "dataset": preset.name,
        "num_users": preset.num_users,
        "num_items": preset.num_items,
        "num_interactions": preset.num_interactions,
        "fuse_rounds": FUSE_ROUNDS,
        **_throughput(simulations, measured_rounds, repeats),
    }


def _measure_engines() -> dict:
    return {
        "shapes": [
            _measure_shape(name, measured_rounds, repeats)
            for name, (measured_rounds, repeats) in SHAPES.items()
        ]
    }


def test_perf_engine(benchmark, save_result):
    payload = run_once(benchmark, _measure_engines)

    (RESULTS_DIR / "perf_engine.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    lines = [
        "Round-engine throughput (synthetic paper shapes, k=32, 256 clients/round)",
        f"batched_fused = vectorized engine + batched sampler + fuse_rounds={FUSE_ROUNDS}",
    ]
    for shape in payload["shapes"]:
        lines += [
            f"{shape['dataset']} ({shape['num_users']} users / {shape['num_items']} items)",
            f"  loop engine:       {shape['loop_rounds_per_sec']:8.2f} rounds/sec",
            f"  vectorized engine: {shape['vectorized_rounds_per_sec']:8.2f} rounds/sec"
            f"  ({shape['vectorized_speedup']:.2f}x)",
            f"  batched + fused:   {shape['batched_fused_rounds_per_sec']:8.2f} rounds/sec"
            f"  ({shape['batched_fused_speedup']:.2f}x)",
        ]
    save_result("perf_engine", "\n".join(lines))

    gate = next(s for s in payload["shapes"] if s["dataset"] == GATE_SHAPE)
    assert gate["vectorized_speedup"] >= MIN_SPEEDUP, (
        f"vectorized engine is only {gate['vectorized_speedup']:.2f}x faster than the loop "
        f"engine at the {GATE_SHAPE} shape (required: {MIN_SPEEDUP}x)"
    )
    sparse = next(s for s in payload["shapes"] if s["dataset"] == SPARSE_GATE_SHAPE)
    assert sparse["batched_fused_speedup"] >= MIN_SPEEDUP, (
        f"batched sampler + round fusion is only {sparse['batched_fused_speedup']:.2f}x "
        f"faster than the loop engine at the {SPARSE_GATE_SHAPE} shape "
        f"(required: {MIN_SPEEDUP}x)"
    )


# --------------------------------------------------------------------------- #
# CI smoke gate
# --------------------------------------------------------------------------- #

SMOKE_ROUNDS = 4
SMOKE_MIN_SPEEDUP = 2.0


def test_perf_engine_smoke(benchmark):
    """Fast loop-vs-vectorized regression gate (run by CI via ``-k smoke``).

    One interleaved pass at the ml-100k shape with a reduced round count; the
    threshold is deliberately lower than the full benchmark's so shared CI
    runners do not flake, while a genuine loss of the vectorized speedup
    (which is >4x when healthy) still fails the build.
    """

    def measure() -> dict:
        _, dataset = _build_dataset(GATE_SHAPE)
        simulations = {
            label: _build_simulation(dataset, variant)
            for label, variant in VARIANTS.items()
        }
        return _throughput(simulations, SMOKE_ROUNDS, 1)

    payload = run_once(benchmark, measure)
    assert payload["vectorized_speedup"] >= SMOKE_MIN_SPEEDUP, (
        f"vectorized engine is only {payload['vectorized_speedup']:.2f}x faster than "
        f"the loop engine in the smoke measurement (required: {SMOKE_MIN_SPEEDUP}x)"
    )
    assert payload["batched_fused_rounds_per_sec"] > payload["loop_rounds_per_sec"], (
        "batched sampler + fusion must not be slower than the loop reference"
    )


# --------------------------------------------------------------------------- #
# Attack-enabled rounds
# --------------------------------------------------------------------------- #

ATTACK_MEASURED_ROUNDS = 8
ATTACK_REPEATS = 2
ATTACK_XI = 0.01
ATTACK_RHO = 0.05


def _build_attack_simulation(dataset, public, variant: dict) -> FederatedSimulation:
    popularity = dataset.item_popularity
    target_items = np.argsort(popularity, kind="stable")[:5].astype(np.int64)
    attack = FedRecAttack(
        public,
        FedRecAttackConfig(approx_epochs_initial=5, approx_epochs_per_round=2),
    )
    num_malicious = int(np.ceil(ATTACK_RHO * dataset.num_users))
    return _build_simulation(
        dataset,
        variant,
        target_items=target_items,
        attack=attack,
        num_malicious=num_malicious,
    )


def _measure_attack() -> dict:
    preset, dataset = _build_dataset(GATE_SHAPE)
    public = sample_public_interactions(
        dataset, ATTACK_XI, rng=SeedSequenceFactory(2022).generator("perf-public")
    )
    simulations = {
        label: _build_attack_simulation(dataset, public, variant)
        for label, variant in ATTACK_VARIANTS.items()
    }
    return {
        "dataset": preset.name,
        "attack": "FedRecAttack",
        "xi": ATTACK_XI,
        "rho": ATTACK_RHO,
        "active_public_users": int(public.users_with_public_interactions().shape[0]),
        **_throughput(simulations, ATTACK_MEASURED_ROUNDS, ATTACK_REPEATS),
    }


def test_perf_attack_rounds(benchmark, save_result):
    payload = run_once(benchmark, _measure_attack)

    (RESULTS_DIR / "perf_attack.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    save_result(
        "perf_attack",
        "\n".join(
            [
                "Attack-enabled round throughput (FedRecAttack, synthetic ML-100K shape,",
                f"xi={ATTACK_XI}, rho={ATTACK_RHO}, k={NUM_FACTORS}, "
                f"{CLIENTS_PER_ROUND} clients/round)",
                f"  loop attacker:       {payload['loop_rounds_per_sec']:8.2f} rounds/sec",
                f"  vectorized attacker: {payload['vectorized_rounds_per_sec']:8.2f} rounds/sec"
                f"  ({payload['vectorized_speedup']:.2f}x)",
                f"  + batched sampler:   {payload['batched_rounds_per_sec']:8.2f} rounds/sec"
                f"  ({payload['batched_speedup']:.2f}x)",
            ]
        ),
    )

    assert payload["vectorized_speedup"] >= MIN_SPEEDUP, (
        f"vectorized attacker pipeline is only {payload['vectorized_speedup']:.2f}x faster "
        f"than the loop attacker (required: {MIN_SPEEDUP}x)"
    )
    assert payload["batched_speedup"] > payload["vectorized_speedup"], (
        "the batched sampler must push attack-enabled rounds beyond the "
        "permutation-sampler vectorized pipeline "
        f"({payload['batched_speedup']:.2f}x vs {payload['vectorized_speedup']:.2f}x)"
    )


# --------------------------------------------------------------------------- #
# Sharded multi-worker rounds
# --------------------------------------------------------------------------- #

WORKER_COUNTS = (1, 2, 4)
WORKER_GATE_SHAPE = "ml-10m-shape"
#: ml-10m-shape scaled down; per-user activity (~143 interactions) is
#: preserved, so per-client round cost matches the full shape and the
#: shard/worker balance is representative.
WORKER_SCALE = 0.02
WORKER_ROUNDS = 6
WORKER_REPEATS = 2
#: Required rounds/sec ratio of workers=4 over workers=1 — enforced only on
#: runners with >= 4 CPUs; single-CPU runs still record honest numbers.
MIN_WORKER_SPEEDUP = 1.5


def _measure_workers() -> dict:
    preset = scaled_preset(WORKER_GATE_SHAPE, WORKER_SCALE)
    dataset = generate_synthetic_dataset(
        SyntheticConfig.from_preset(preset),
        SeedSequenceFactory(2022).generator(f"perf-data-{WORKER_GATE_SHAPE}"),
    )
    simulations = {
        count: _build_simulation(dataset, {"engine": "vectorized", "workers": count})
        for count in WORKER_COUNTS
    }
    try:
        for simulation in simulations.values():
            _time_rounds(simulation, 2)
        best = {count: float("inf") for count in WORKER_COUNTS}
        for _ in range(WORKER_REPEATS):
            for count, simulation in simulations.items():
                best[count] = min(best[count], _time_rounds(simulation, WORKER_ROUNDS))
    finally:
        for simulation in simulations.values():
            simulation.close()
    cpu_count = os.cpu_count() or 1
    payload: dict = {
        "dataset": preset.name,
        "scale": WORKER_SCALE,
        "num_users": preset.num_users,
        "num_items": preset.num_items,
        "num_interactions": preset.num_interactions,
        "num_factors": NUM_FACTORS,
        "clients_per_round": CLIENTS_PER_ROUND,
        "measured_rounds": WORKER_ROUNDS,
        "cpu_count": cpu_count,
        "gate_enforced": cpu_count >= 4,
    }
    base_rps = WORKER_ROUNDS / best[1]
    for count in WORKER_COUNTS:
        rps = WORKER_ROUNDS / best[count]
        payload[f"workers{count}_rounds_per_sec"] = rps
        if count != 1:
            payload[f"workers{count}_speedup"] = rps / base_rps
    return payload


def test_perf_workers(benchmark, save_result):
    """Sharded-round scaling at the ml-10m shape (scaled, activity preserved).

    All worker counts produce bit-identical histories (see
    ``tests/test_sharded_engine_equivalence.py``), so any speedup here is
    free of accuracy trade-offs.  The >= 1.5x gate at 4 workers only fires
    on runners that actually have 4 CPUs; elsewhere the measured numbers
    are still written to ``benchmarks/results/perf_workers.json`` with
    ``gate_enforced: false`` so the record stays honest.
    """
    payload = run_once(benchmark, _measure_workers)

    (RESULTS_DIR / "perf_workers.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    lines = [
        "Sharded multi-worker round throughput "
        f"({payload['dataset']} at scale={WORKER_SCALE}: "
        f"{payload['num_users']} users / {payload['num_items']} items, "
        f"k={NUM_FACTORS}, {CLIENTS_PER_ROUND} clients/round)",
        f"cpu_count={payload['cpu_count']}  gate_enforced={payload['gate_enforced']}",
    ]
    for count in WORKER_COUNTS:
        suffix = (
            f"  ({payload[f'workers{count}_speedup']:.2f}x)" if count != 1 else ""
        )
        lines.append(
            f"  workers={count}: {payload[f'workers{count}_rounds_per_sec']:8.2f} "
            f"rounds/sec{suffix}"
        )
    save_result("perf_workers", "\n".join(lines))

    if not payload["gate_enforced"]:
        pytest.skip(
            f"scaling gate needs >= 4 CPUs (have {payload['cpu_count']}); "
            "results recorded without enforcement"
        )
    assert payload["workers4_speedup"] >= MIN_WORKER_SPEEDUP, (
        f"4 sharded workers are only {payload['workers4_speedup']:.2f}x faster than "
        f"the in-process engine (required: {MIN_WORKER_SPEEDUP}x)"
    )


def test_perf_workers_smoke(benchmark):
    """Fast sharded-pool smoke (run by CI via ``-k smoke``).

    Drives real pool rounds at the ml-100k shape and checks the sharded
    configuration sustains throughput within a loose factor of the
    in-process engine — catastrophic pool regressions (per-round worker
    respawns, serialized shards) fail the build while shared-runner noise
    does not.  Skips on single-CPU runners, where the pool can only
    timeslice.
    """
    if (os.cpu_count() or 1) < 2:
        pytest.skip("multi-worker smoke needs >= 2 CPUs")

    def measure() -> dict:
        _, dataset = _build_dataset(GATE_SHAPE)
        simulations = {
            count: _build_simulation(dataset, {"engine": "vectorized", "workers": count})
            for count in (1, 2)
        }
        try:
            for simulation in simulations.values():
                _time_rounds(simulation, 1)
            times = {
                count: _time_rounds(simulation, SMOKE_ROUNDS)
                for count, simulation in simulations.items()
            }
        finally:
            for simulation in simulations.values():
                simulation.close()
        return {
            f"workers{count}_rounds_per_sec": SMOKE_ROUNDS / seconds
            for count, seconds in times.items()
        }

    payload = run_once(benchmark, measure)
    assert payload["workers2_rounds_per_sec"] >= 0.2 * payload["workers1_rounds_per_sec"], (
        "sharded rounds are catastrophically slower than in-process "
        f"({payload['workers2_rounds_per_sec']:.2f} vs "
        f"{payload['workers1_rounds_per_sec']:.2f} rounds/sec)"
    )
