"""Benchmark: loop vs vectorized round-engine throughput.

Runs federated training rounds on a synthetic dataset with the exact
MovieLens-100K shape (943 users / 1,682 items / 100,000 interactions) and the
paper's protocol defaults (k = 32, 256 clients per round), measuring
rounds/sec for both engines.  The vectorized engine must be at least 3x
faster; both engines consume identical per-client random streams, so the
speedup is free of any accuracy trade-off (see
``tests/test_federated_engine_equivalence.py``).

Results land in ``benchmarks/results/perf_engine.json`` (and ``.txt``).
"""

from __future__ import annotations

import json
import time

import numpy as np

from conftest import RESULTS_DIR, run_once

from repro.data.presets import get_preset
from repro.data.synthetic import SyntheticConfig, generate_synthetic_dataset
from repro.federated.config import FederatedConfig
from repro.federated.simulation import FederatedSimulation
from repro.rng import SeedSequenceFactory

NUM_FACTORS = 32
CLIENTS_PER_ROUND = 256
MEASURED_EPOCHS = 5
MIN_SPEEDUP = 3.0


def _build_simulation(dataset, engine: str) -> FederatedSimulation:
    config = FederatedConfig(
        num_factors=NUM_FACTORS,
        learning_rate=0.01,
        clients_per_round=CLIENTS_PER_ROUND,
        num_epochs=1,
        engine=engine,
    )
    return FederatedSimulation(
        train=dataset,
        config=config,
        test_items=None,
        target_items=None,
        seed=SeedSequenceFactory(2022),
    )


def _measure() -> dict:
    preset = get_preset("ml-100k")
    dataset = generate_synthetic_dataset(
        SyntheticConfig.from_preset(preset), SeedSequenceFactory(2022).generator("perf-data")
    )
    rounds_per_epoch = int(np.ceil(dataset.num_users / CLIENTS_PER_ROUND))
    simulations = {engine: _build_simulation(dataset, engine) for engine in ("loop", "vectorized")}
    elapsed: dict[str, list[float]] = {engine: [] for engine in simulations}
    for simulation in simulations.values():
        simulation._run_epoch()  # warm-up: allocators, caches, lazy imports
    # Interleave the engines and keep each one's best epoch, so scheduler
    # hiccups and CPU-frequency drift on shared boxes cannot skew the ratio.
    for _ in range(MEASURED_EPOCHS):
        for engine, simulation in simulations.items():
            start = time.perf_counter()
            simulation._run_epoch()
            elapsed[engine].append(time.perf_counter() - start)
    loop_rps = rounds_per_epoch / min(elapsed["loop"])
    vectorized_rps = rounds_per_epoch / min(elapsed["vectorized"])
    return {
        "dataset": preset.name,
        "num_users": preset.num_users,
        "num_items": preset.num_items,
        "num_factors": NUM_FACTORS,
        "clients_per_round": CLIENTS_PER_ROUND,
        "loop_rounds_per_sec": loop_rps,
        "vectorized_rounds_per_sec": vectorized_rps,
        "speedup": vectorized_rps / loop_rps,
    }


def test_perf_engine(benchmark, save_result):
    payload = run_once(benchmark, _measure)

    (RESULTS_DIR / "perf_engine.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    save_result(
        "perf_engine",
        "\n".join(
            [
                "Round-engine throughput (synthetic ML-100K shape, k=32, 256 clients/round)",
                f"  loop engine:       {payload['loop_rounds_per_sec']:8.2f} rounds/sec",
                f"  vectorized engine: {payload['vectorized_rounds_per_sec']:8.2f} rounds/sec",
                f"  speedup:           {payload['speedup']:8.2f}x",
            ]
        ),
    )

    assert payload["speedup"] >= MIN_SPEEDUP, (
        f"vectorized engine is only {payload['speedup']:.2f}x faster than the loop engine "
        f"(required: {MIN_SPEEDUP}x)"
    )
