"""Benchmark: regenerate Table IV (impact of the malicious-user proportion rho).

Paper shape: the attack is ineffective at rho = 1-2%, rises steeply around
3-5% and saturates afterwards — rho is the key cost factor.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import BENCH_PROFILE, table4_rho_sweep

RHOS = (0.01, 0.02, 0.03, 0.05, 0.10)


def test_table4_rho_sweep(benchmark, save_result):
    table = run_once(benchmark, table4_rho_sweep, BENCH_PROFILE, RHOS)
    save_result("table4_rho_sweep", table.to_text())

    er10 = {rho: table.raw[f"rho={rho}"]["ER@10"] for rho in RHOS}

    # Tiny malicious cohorts achieve (almost) nothing.
    assert er10[0.01] < 0.2
    # By rho = 5% the attack is highly effective, and it stays effective at 10%.
    assert er10[0.05] > 0.6
    assert er10[0.10] > 0.6
    # The effectiveness is (weakly) monotone in rho up to saturation.
    assert er10[0.05] >= er10[0.01]
    assert er10[0.10] >= er10[0.02]
    # The steep rise: the gap between 1% and 5% dominates the gap between 5% and 10%.
    assert er10[0.05] - er10[0.01] > abs(er10[0.10] - er10[0.05])
