"""Benchmark: regenerate Table III (impact of the public-interaction ratio xi).

Paper shape: FedRecAttack is already highly effective at xi = 1% and extra
public interactions give diminishing returns — ER barely improves from 1% to
10%.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import BENCH_PROFILE, table3_xi_sweep

XIS = (0.01, 0.02, 0.03, 0.05, 0.10)


def test_table3_xi_sweep(benchmark, save_result):
    table = run_once(benchmark, table3_xi_sweep, BENCH_PROFILE, XIS)
    save_result("table3_xi_sweep", table.to_text())

    er10 = {xi: table.raw[f"xi={xi}"]["ER@10"] for xi in XIS}

    # The attack is effective at every evaluated xi (including the smallest).
    assert er10[0.01] > 0.5
    # Diminishing returns: going from 1% to 10% public interactions changes
    # ER@10 by far less than the jump from "no attack" (0) to xi = 1%.
    assert abs(er10[0.10] - er10[0.01]) < 0.5 * er10[0.01]
    # More knowledge never collapses the attack.
    assert min(er10.values()) > 0.4
