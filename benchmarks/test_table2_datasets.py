"""Benchmark: regenerate Table II (dataset sizes and sparsity)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import BENCH_PROFILE, table2_dataset_sizes


def test_table2_dataset_sizes(benchmark, save_result):
    table = run_once(benchmark, table2_dataset_sizes, BENCH_PROFILE)
    save_result("table2_dataset_sizes", table.to_text())

    raw = table.raw
    # All three datasets are present with plausible statistics.
    assert set(raw) == {"ml-100k", "ml-1m", "steam-200k"}
    for stats in raw.values():
        assert stats["num_users"] > 0
        assert stats["num_items"] > 0
        assert 0.0 < stats["sparsity"] < 1.0

    # Shape of Table II: Steam is the sparsest dataset, MovieLens-1M has the
    # highest per-user activity, MovieLens-100K the smallest user base.
    assert raw["steam-200k"]["sparsity"] > raw["ml-100k"]["sparsity"]
    assert raw["steam-200k"]["sparsity"] > raw["ml-1m"]["sparsity"]
    assert (
        raw["ml-1m"]["avg_interactions_per_user"]
        > raw["ml-100k"]["avg_interactions_per_user"]
        > raw["steam-200k"]["avg_interactions_per_user"]
    )
    assert raw["ml-100k"]["num_users"] <= raw["steam-200k"]["num_users"]
