"""Benchmark: evaluation throughput (engines, streams and scoring paths).

Three measurements share this module:

* **Full-ranking engines** — one model snapshot evaluated end to end (HR@10,
  NDCG@10, ER@5, ER@10, target-NDCG@10) at the synthetic paper shapes
  (Table II) under the full-ranking protocol, ``engine="loop"`` (the
  per-user reference) against ``engine="vectorized"`` (stacked scoring,
  shared InteractionStore masks, partition-based top-K thresholds).  Both
  engines read identical score blocks, so the benchmark asserts every
  full-rank metric is **bit-identical** before trusting the timing.
  Gate: vectorized >= 5x loop at the ml-100k shape.
* **Sampled-protocol streams** — the paper's sampled ranking protocol
  (1 positive + 99 sampled negatives) under ``eval_sampler="per-user"``
  (the historical one-user-at-a-time draw) against ``eval_sampler="batched"``
  (one stacked rejection-sampling draw and one blocked broadcast ranking
  per score block).  Loop/vectorized agreement is asserted per stream
  before timing.  Gates: batched >= 1.5x per-user at the ml-100k shape
  (measured ~2.2x) and strictly faster at ml-1m (where the scoring GEMM
  dominates the epoch).
* **Sampled-protocol scoring paths** — ``eval_path="block"`` (the full
  ``(B, num_items)`` catalog product, candidate columns gathered from it)
  against ``eval_path="candidates"`` (gathered candidate scoring through
  ``score_candidates`` — ``B * (1 + num_negatives)`` dot products, no
  catalog GEMM).  Both paths share the negative draw, so the measured cell
  keeps the draw lean (9 negatives, 512-user blocks) to expose the scoring
  route itself; the paper's 99-negative protocol is reported alongside
  without a gate (there the shared draw dominates both paths).  Metrics are
  asserted identical across paths *and* engines before timing.
  Gate: candidates >= 3x block at the ml-1m shape (measured ~4.8x).

Fast smoke variants (reduced repeats, lower thresholds for noisy shared CI
runners) run in the CI perf job via ``-k smoke``.  Results land in
``benchmarks/results/perf_eval.json`` / ``.txt``.
"""

from __future__ import annotations

import json
import time

import numpy as np

from conftest import RESULTS_DIR, run_once

from repro.data.presets import get_preset
from repro.data.synthetic import SyntheticConfig, generate_synthetic_dataset
from repro.metrics.evaluation import evaluate_snapshot
from repro.models.mf import MatrixFactorizationModel
from repro.rng import SeedSequenceFactory

NUM_FACTORS = 32
NUM_TARGETS = 10
MIN_SPEEDUP = 5.0
GATE_SHAPE = "ml-100k"

#: dataset shape -> interleaved best-of repeats.  The large shapes keep the
#: sweep informative without making it slow; the gate shape is measured the
#: most carefully.
SHAPES: dict[str, int] = {
    "ml-100k": 5,
    "ml-1m": 2,
    "steam-200k": 2,
}

#: The sampled ranking protocol's shapes and gates.  At ml-100k the per-user
#: draw loop dominates the epoch (measured ~2.2x from batching it); at ml-1m
#: the scoring GEMM does, so the stream switch buys less (~1.7x) but must
#: still strictly win.
NUM_EVAL_NEGATIVES = 99
SAMPLED_MIN_SPEEDUP = 1.5
SAMPLED_SHAPES: dict[str, int] = {
    "ml-100k": 5,
    "ml-1m": 2,
}

#: The scoring-path gate: candidate gathers beat the catalog GEMM hardest
#: where the item catalog is large and the candidate sets (and hence the
#: shared draw cost) are small.  The gate cell keeps the draw lean so the
#: measurement isolates the scoring route; the 99-negative cell is reported
#: for context (the shared draw caps its ratio well below the gate).
PATH_SHAPE = "ml-1m"
PATH_GATE_NUM_NEGATIVES = 9
PATH_BLOCK_SIZE = 512
PATH_MIN_SPEEDUP = 3.0
PATH_REPEATS = 3


def _build_snapshot(name: str):
    """Synthetic dataset at the paper shape plus a random MF snapshot."""
    preset = get_preset(name)
    dataset = generate_synthetic_dataset(
        SyntheticConfig.from_preset(preset),
        SeedSequenceFactory(2022).generator(f"perf-eval-data-{name}"),
    )
    model = MatrixFactorizationModel(
        dataset.num_users, dataset.num_items, NUM_FACTORS, init_scale=1.0, rng=7
    )
    rng = SeedSequenceFactory(2022).generator(f"perf-eval-tests-{name}")
    test_items = rng.integers(0, dataset.num_items, size=dataset.num_users)
    target_items = np.argsort(dataset.item_popularity, kind="stable")[:NUM_TARGETS]
    target_items = np.ascontiguousarray(target_items, dtype=np.int64)
    dataset.interaction_store().masks  # build once, outside the timings
    return preset, dataset, model, test_items, target_items


def _evaluate(engine: str, dataset, score_block, test_items, target_items):
    return evaluate_snapshot(
        score_block,
        dataset,
        test_items=test_items,
        target_items=target_items,
        num_negatives=None,
        engine=engine,
    )


def _measure_shape(name: str, repeats: int) -> dict:
    preset, dataset, model, test_items, target_items = _build_snapshot(name)
    score_block = model.score_block  # id-based ScorerProtocol surface

    results = {
        engine: _evaluate(engine, dataset, score_block, test_items, target_items)
        for engine in ("loop", "vectorized")
    }
    assert results["loop"].accuracy == results["vectorized"].accuracy, (
        "full-rank HR/NDCG must be bit-identical between the engines"
    )
    assert results["loop"].exposure == results["vectorized"].exposure, (
        "full-rank ER/target-NDCG must be bit-identical between the engines"
    )

    best = {engine: float("inf") for engine in ("loop", "vectorized")}
    for _ in range(repeats):
        for engine in best:
            # Two consecutive runs per turn: the first re-warms the caches
            # the other engine's working set evicted, so the best-of tracks
            # each engine's steady state rather than the interleaving order.
            for _ in range(2):
                start = time.perf_counter()
                _evaluate(engine, dataset, score_block, test_items, target_items)
                best[engine] = min(best[engine], time.perf_counter() - start)
    loop_eps = 1.0 / best["loop"]
    vectorized_eps = 1.0 / best["vectorized"]
    return {
        "dataset": preset.name,
        "num_users": preset.num_users,
        "num_items": preset.num_items,
        "num_targets": NUM_TARGETS,
        "num_factors": NUM_FACTORS,
        "protocol": "full-rank",
        "loop_evals_per_sec": loop_eps,
        "vectorized_evals_per_sec": vectorized_eps,
        "speedup": vectorized_eps / loop_eps,
        "hr_at_10": results["loop"].accuracy.hr_at_10,
        "er_at_10": results["loop"].exposure.er_at_10,
    }


def _evaluate_sampled(eval_sampler: str, engine: str, dataset, score_block, test_items):
    return evaluate_snapshot(
        score_block,
        dataset,
        test_items=test_items,
        num_negatives=NUM_EVAL_NEGATIVES,
        rng=np.random.default_rng(2022),
        engine=engine,
        eval_sampler=eval_sampler,
    )


def _measure_sampled_shape(name: str, repeats: int) -> dict:
    """Per-user vs batched evaluation stream at one sampled-protocol shape.

    Correctness first: for each stream, the loop oracle and the vectorized
    engine must report identical metrics from the shared seed — only then is
    the stream's throughput measured (vectorized engine, interleaved
    best-of, same discipline as the full-rank sweep).
    """
    preset, dataset, model, test_items, _ = _build_snapshot(name)
    score_block = model.score_block
    results = {}
    for sampler in ("per-user", "batched"):
        per_engine = {
            engine: _evaluate_sampled(sampler, engine, dataset, score_block, test_items)
            for engine in ("loop", "vectorized")
        }
        assert per_engine["loop"].accuracy == per_engine["vectorized"].accuracy, (
            f"sampled metrics must be identical across engines under the "
            f"{sampler!r} stream"
        )
        results[sampler] = per_engine["vectorized"]

    best = {sampler: float("inf") for sampler in ("per-user", "batched")}
    for _ in range(repeats):
        for sampler in best:
            for _ in range(2):
                start = time.perf_counter()
                _evaluate_sampled(sampler, "vectorized", dataset, score_block, test_items)
                best[sampler] = min(best[sampler], time.perf_counter() - start)
    per_user_eps = 1.0 / best["per-user"]
    batched_eps = 1.0 / best["batched"]
    return {
        "dataset": preset.name,
        "num_users": preset.num_users,
        "num_items": preset.num_items,
        "num_factors": NUM_FACTORS,
        "protocol": f"sampled-{NUM_EVAL_NEGATIVES}",
        "per_user_evals_per_sec": per_user_eps,
        "batched_evals_per_sec": batched_eps,
        "speedup": batched_eps / per_user_eps,
        "per_user_hr_at_10": results["per-user"].accuracy.hr_at_10,
        "batched_hr_at_10": results["batched"].accuracy.hr_at_10,
    }


def _evaluate_path(
    eval_path: str, engine: str, dataset, model, test_items, num_negatives: int
):
    return evaluate_snapshot(
        model,  # protocol source: the candidates path dispatches natively
        dataset,
        test_items=test_items,
        num_negatives=num_negatives,
        rng=np.random.default_rng(2022),
        engine=engine,
        eval_sampler="batched",
        eval_path=eval_path,
        block_size=PATH_BLOCK_SIZE,
    )


def _measure_path_shape(name: str, repeats: int, num_negatives: int) -> dict:
    """Block-product vs candidate-gather scoring at one sampled shape.

    Correctness first, in both directions: for each path the loop oracle
    must agree with the vectorized engine, and across paths the metrics
    must be identical (the draws, their stream order and the rank
    comparisons are shared — only the arithmetic route differs).  Only then
    is throughput measured, vectorized engine, interleaved best-of.
    """
    preset, dataset, model, test_items, _ = _build_snapshot(name)
    results = {}
    for eval_path in ("block", "candidates"):
        per_engine = {
            engine: _evaluate_path(
                eval_path, engine, dataset, model, test_items, num_negatives
            )
            for engine in ("loop", "vectorized")
        }
        assert per_engine["loop"].accuracy == per_engine["vectorized"].accuracy, (
            f"sampled metrics must be identical across engines under the "
            f"{eval_path!r} path"
        )
        results[eval_path] = per_engine["vectorized"]
    assert results["block"].accuracy == results["candidates"].accuracy, (
        "the candidate-gather path must report the same sampled metrics as "
        "the block path before its timing means anything"
    )

    best = {eval_path: float("inf") for eval_path in ("block", "candidates")}
    for _ in range(repeats):
        for eval_path in best:
            for _ in range(2):
                start = time.perf_counter()
                _evaluate_path(
                    eval_path, "vectorized", dataset, model, test_items, num_negatives
                )
                best[eval_path] = min(best[eval_path], time.perf_counter() - start)
    block_eps = 1.0 / best["block"]
    candidates_eps = 1.0 / best["candidates"]
    return {
        "dataset": preset.name,
        "num_users": preset.num_users,
        "num_items": preset.num_items,
        "num_factors": NUM_FACTORS,
        "protocol": f"sampled-{num_negatives}",
        "block_size": PATH_BLOCK_SIZE,
        "block_evals_per_sec": block_eps,
        "candidates_evals_per_sec": candidates_eps,
        "speedup": candidates_eps / block_eps,
        "hr_at_10": results["block"].accuracy.hr_at_10,
    }


def test_perf_eval(benchmark, save_result):
    payload = run_once(
        benchmark,
        lambda: {
            "shapes": [
                _measure_shape(name, repeats) for name, repeats in SHAPES.items()
            ],
            "sampled_shapes": [
                _measure_sampled_shape(name, repeats)
                for name, repeats in SAMPLED_SHAPES.items()
            ],
            "path_shapes": [
                _measure_path_shape(PATH_SHAPE, PATH_REPEATS, PATH_GATE_NUM_NEGATIVES),
                _measure_path_shape(PATH_SHAPE, PATH_REPEATS, NUM_EVAL_NEGATIVES),
            ],
        },
    )

    (RESULTS_DIR / "perf_eval.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    lines = [
        "Evaluation-engine throughput (full-rank protocol, "
        f"{NUM_TARGETS} targets, k={NUM_FACTORS})",
    ]
    for shape in payload["shapes"]:
        lines += [
            f"{shape['dataset']} ({shape['num_users']} users / {shape['num_items']} items)",
            f"  loop engine:       {shape['loop_evals_per_sec']:8.2f} evals/sec",
            f"  vectorized engine: {shape['vectorized_evals_per_sec']:8.2f} evals/sec"
            f"  ({shape['speedup']:.2f}x)",
        ]
    lines += [
        "",
        "Sampled-protocol streams (1 positive + "
        f"{NUM_EVAL_NEGATIVES} negatives, vectorized engine)",
    ]
    for shape in payload["sampled_shapes"]:
        lines += [
            f"{shape['dataset']} ({shape['num_users']} users / {shape['num_items']} items)",
            f"  per-user stream: {shape['per_user_evals_per_sec']:8.2f} evals/sec",
            f"  batched stream:  {shape['batched_evals_per_sec']:8.2f} evals/sec"
            f"  ({shape['speedup']:.2f}x)",
        ]
    lines += [
        "",
        "Sampled-protocol scoring paths (batched stream, "
        f"{PATH_BLOCK_SIZE}-user blocks, vectorized engine)",
    ]
    for shape in payload["path_shapes"]:
        lines += [
            f"{shape['dataset']} {shape['protocol']} "
            f"({shape['num_users']} users / {shape['num_items']} items)",
            f"  block path:      {shape['block_evals_per_sec']:8.2f} evals/sec",
            f"  candidates path: {shape['candidates_evals_per_sec']:8.2f} evals/sec"
            f"  ({shape['speedup']:.2f}x)",
        ]
    save_result("perf_eval", "\n".join(lines))

    gate = next(s for s in payload["shapes"] if s["dataset"] == GATE_SHAPE)
    assert gate["speedup"] >= MIN_SPEEDUP, (
        f"vectorized evaluation is only {gate['speedup']:.2f}x faster than the loop "
        f"oracle at the {GATE_SHAPE} shape (required: {MIN_SPEEDUP}x)"
    )
    sampled_gate = next(
        s for s in payload["sampled_shapes"] if s["dataset"] == GATE_SHAPE
    )
    assert sampled_gate["speedup"] >= SAMPLED_MIN_SPEEDUP, (
        f"the batched evaluation stream is only {sampled_gate['speedup']:.2f}x faster "
        f"than the per-user stream at the {GATE_SHAPE} shape "
        f"(required: {SAMPLED_MIN_SPEEDUP}x)"
    )
    for shape in payload["sampled_shapes"]:
        assert shape["speedup"] > 1.0, (
            f"the batched evaluation stream must beat the per-user stream at every "
            f"measured shape; at {shape['dataset']} it is {shape['speedup']:.2f}x"
        )
    path_gate = next(
        s
        for s in payload["path_shapes"]
        if s["protocol"] == f"sampled-{PATH_GATE_NUM_NEGATIVES}"
    )
    assert path_gate["speedup"] >= PATH_MIN_SPEEDUP, (
        f"the candidate-gather path is only {path_gate['speedup']:.2f}x faster than "
        f"the block path at the {PATH_SHAPE} shape (required: {PATH_MIN_SPEEDUP}x)"
    )


# --------------------------------------------------------------------------- #
# CI smoke gate
# --------------------------------------------------------------------------- #

SMOKE_MIN_SPEEDUP = 3.0


def test_perf_eval_smoke(benchmark):
    """Fast evaluation-engine regression gate (run by CI via ``-k smoke``).

    One interleaved pass at the ml-100k shape; the threshold is deliberately
    lower than the full benchmark's so shared CI runners do not flake, while
    a genuine loss of the vectorized speedup (>5x when healthy) still fails
    the build.  Bit-identity of the full-rank metrics is asserted inside the
    measurement helper.
    """
    payload = run_once(benchmark, lambda: _measure_shape(GATE_SHAPE, 2))
    assert payload["speedup"] >= SMOKE_MIN_SPEEDUP, (
        f"vectorized evaluation is only {payload['speedup']:.2f}x faster than the "
        f"loop oracle in the smoke measurement (required: {SMOKE_MIN_SPEEDUP}x)"
    )


SAMPLED_SMOKE_MIN_SPEEDUP = 1.25


def test_perf_eval_sampled_smoke(benchmark):
    """Fast batched-stream regression gate (run by CI via ``-k smoke``).

    The full gate requires >= 1.5x at the ml-100k sampled-protocol shape
    (measured ~2.2x when healthy); this CI variant lowers the bar for noisy
    shared runners but still fails on a genuine loss of the stacked draw's
    advantage.  Engine agreement per stream is asserted inside the
    measurement helper.
    """
    payload = run_once(benchmark, lambda: _measure_sampled_shape(GATE_SHAPE, 2))
    assert payload["speedup"] >= SAMPLED_SMOKE_MIN_SPEEDUP, (
        f"the batched evaluation stream is only {payload['speedup']:.2f}x faster "
        f"than the per-user stream in the smoke measurement "
        f"(required: {SAMPLED_SMOKE_MIN_SPEEDUP}x)"
    )


PATH_SMOKE_MIN_SPEEDUP = 2.0


def test_perf_eval_path_smoke(benchmark):
    """Fast candidate-gather regression gate (run by CI via ``-k smoke``).

    One interleaved pass at the ml-1m gate cell (9 negatives, 512-user
    blocks); the full benchmark requires >= 3x there (measured ~4.8x when
    healthy), this CI variant lowers the bar for noisy shared runners but
    still fails if the gather path ever degenerates back into a catalog
    GEMM.  Cross-path and cross-engine metric identity is asserted inside
    the measurement helper.
    """
    payload = run_once(
        benchmark, lambda: _measure_path_shape(PATH_SHAPE, 1, PATH_GATE_NUM_NEGATIVES)
    )
    assert payload["speedup"] >= PATH_SMOKE_MIN_SPEEDUP, (
        f"the candidate-gather path is only {payload['speedup']:.2f}x faster than "
        f"the block path in the smoke measurement "
        f"(required: {PATH_SMOKE_MIN_SPEEDUP}x)"
    )
