"""Benchmark: regenerate Table V (impact of the non-zero-row limit kappa).

Paper shape: kappa has little impact — the attack stays highly effective for
every kappa in {20, ..., 100} because the poisoned gradient concentrates on a
handful of rows anyway.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import BENCH_PROFILE, table5_kappa_sweep

KAPPAS = (20, 40, 60, 80, 100)


def test_table5_kappa_sweep(benchmark, save_result):
    table = run_once(benchmark, table5_kappa_sweep, BENCH_PROFILE, KAPPAS)
    save_result("table5_kappa_sweep", table.to_text())

    er10 = np.array([table.raw[f"kappa={kappa}"]["ER@10"] for kappa in KAPPAS])

    # The attack works for every kappa, including the tightest budget.
    assert er10.min() > 0.5
    # And kappa has little impact: the spread across settings is small
    # relative to the effect size.
    assert er10.max() - er10.min() < 0.4
