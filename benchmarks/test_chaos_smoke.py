"""Chaos smoke: one degraded-but-deterministic run of each resilience layer.

Fast enough for CI, this module drives the two fault surfaces end to end:

* **federated** — a sharded training run under client churn (dropouts,
  crashes, stale-merged stragglers) *and* injected transient shard failures,
  asserting the run completes, records structured incidents and — run twice
  — replays bit-identically (chaos is seeded, never wall-clock);
* **serving** — an overloaded HTTP front end under injected latency,
  asserting every excess request is shed as a clean JSON 503 with a
  ``Retry-After`` header (zero dropped connections) and the in-flight gauge
  returns to zero.

Incident and shedding tallies land in ``benchmarks/results/chaos_smoke.txt``.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np

from repro.data.synthetic import SyntheticConfig, generate_synthetic_dataset
from repro.data.splits import leave_one_out_split
from repro.federated.config import FederatedConfig
from repro.federated.dynamics import (
    ShardFaultPlan,
    clear_shard_fault_plan,
    install_shard_fault_plan,
)
from repro.federated.simulation import FederatedSimulation
from repro.models.mf import MatrixFactorizationModel
from repro.rng import SeedSequenceFactory
from repro.serving import (
    FactorSnapshot,
    RecommenderService,
    ServingFaultInjector,
    build_http_server,
)

NUM_USERS = 96
NUM_ITEMS = 140
CONCURRENT_REQUESTS = 12
MAX_IN_FLIGHT = 2


def _chaos_run():
    """One sharded training run with every fault class enabled."""
    seeds = SeedSequenceFactory(77)
    dataset = generate_synthetic_dataset(
        SyntheticConfig(
            num_users=NUM_USERS,
            num_items=NUM_ITEMS,
            num_interactions=1000,
            popularity_exponent=0.9,
            activity_sigma=0.9,
            name="chaos-smoke",
        ),
        seeds.generator("chaos-dataset"),
    )
    split = leave_one_out_split(dataset, rng=seeds.generator("chaos-split"))
    config = FederatedConfig(
        num_factors=8,
        learning_rate=0.05,
        clients_per_round=32,
        num_epochs=2,
        workers=2,
        dropout_rate=0.15,
        crash_rate=0.1,
        straggler_rate=0.2,
        straggler_policy="stale-merge",
        min_reporters=4,
        shard_retries=2,
        shard_backoff=0.01,
    )
    install_shard_fault_plan(ShardFaultPlan(transient_failures={1: 1}, rounds=(1, 4)))
    simulation = FederatedSimulation(
        train=split.train,
        config=config,
        test_items=split.test_items,
        seed=SeedSequenceFactory(41),
        eval_num_negatives=20,
    )
    try:
        result = simulation.run()
    finally:
        simulation.close()
        clear_shard_fault_plan()
    return result


def test_chaos_smoke_federated(save_result):
    first = _chaos_run()
    second = _chaos_run()

    assert first.incidents, "a chaos run must record its degradations"
    kinds = sorted({incident.kind for incident in first.incidents})
    assert "shard-retry" in kinds
    assert {"client-dropout", "client-crash", "straggler"} & set(kinds)

    # Seeded chaos replays bit for bit: losses, parameters and incidents.
    np.testing.assert_array_equal(
        np.asarray(first.history.training_loss()),
        np.asarray(second.history.training_loss()),
    )
    np.testing.assert_array_equal(first.item_factors, second.item_factors)
    assert first.incidents == second.incidents

    tally = {kind: sum(1 for i in first.incidents if i.kind == kind) for kind in kinds}
    save_result(
        "chaos_smoke_federated",
        "chaos smoke (federated): "
        + ", ".join(f"{kind}={count}" for kind, count in sorted(tally.items())),
    )


def _serving_service() -> RecommenderService:
    rng = np.random.default_rng(5)
    interactions = [
        (user, int(item))
        for user in range(24)
        for item in rng.choice(30, size=3, replace=False)
    ]
    from repro.data.dataset import InteractionDataset

    train = InteractionDataset(24, 30, interactions, name="chaos-serving")
    model = MatrixFactorizationModel(24, 30, 8, init_scale=1.0, rng=6)
    return RecommenderService(FactorSnapshot.from_model(model, version=1), train, top_k=5)


def test_chaos_smoke_serving(save_result):
    injector = ServingFaultInjector(latency=0.4, latency_rate=1.0, rng=13)
    server = build_http_server(
        _serving_service(), max_in_flight=MAX_IN_FLIGHT, fault_injector=injector
    )
    thread = threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.02), daemon=True
    )
    thread.start()
    host, port = server.server_address[0], server.server_address[1]
    base = f"http://{host}:{port}"
    statuses: list[int | None] = [None] * CONCURRENT_REQUESTS

    def fetch(index: int) -> None:
        try:
            with urllib.request.urlopen(
                f"{base}/recommend?user={index}", timeout=10
            ) as response:
                statuses[index] = response.status
        except urllib.error.HTTPError as error:
            assert error.headers["Retry-After"] is not None
            assert "error" in json.loads(error.read().decode("utf-8"))
            statuses[index] = error.code

    try:
        fetchers = [
            threading.Thread(target=fetch, args=(index,))
            for index in range(CONCURRENT_REQUESTS)
        ]
        for fetcher in fetchers:
            fetcher.start()
        for fetcher in fetchers:
            fetcher.join(timeout=30)

        # Zero dropped connections: every request got an HTTP answer.
        assert all(status in (200, 503) for status in statuses)
        shed = sum(1 for status in statuses if status == 503)
        served = sum(1 for status in statuses if status == 200)
        assert served >= MAX_IN_FLIGHT
        assert shed >= 1, "an overloaded server must shed, not queue forever"
        stats = server.stats_payload()
        assert stats["shed_requests"] == shed
        assert stats["in_flight"] == 0
        save_result(
            "chaos_smoke_serving",
            f"chaos smoke (serving): served={served} shed={shed} "
            f"of {CONCURRENT_REQUESTS} concurrent requests "
            f"(max_in_flight={MAX_IN_FLIGHT})",
        )
    finally:
        server.shutdown()
        server.server_close()
        thread.join()
