"""Benchmark: regenerate Table VI (FedRecAttack vs data-poisoning attacks).

Paper shape: the full-knowledge data-poisoning baselines P1 and P2 stay at
near-zero ER@10 in the federated setting at every malicious-user proportion,
while FedRecAttack jumps to a high level once rho reaches a few percent.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import BENCH_PROFILE, table6_data_poisoning

RHOS = (0.005, 0.01, 0.03, 0.05)


def test_table6_data_poisoning(benchmark, save_result):
    table = run_once(benchmark, table6_data_poisoning, BENCH_PROFILE, RHOS)
    save_result("table6_data_poisoning", table.to_text())

    raw = table.raw
    # The clean rows stay at zero.
    assert all(value < 0.05 for value in raw["none"].values())
    # P1 / P2 never reach a satisfactory exposure level.
    assert max(raw["p1"].values()) < 0.3
    assert max(raw["p2"].values()) < 0.3
    # FedRecAttack overtakes both by a wide margin at the largest rho.
    assert raw["fedrecattack"]["rho=0.05"] > 0.5
    assert raw["fedrecattack"]["rho=0.05"] > max(raw["p1"]["rho=0.05"], raw["p2"]["rho=0.05"]) + 0.3
    # At the tiny rho = 0.5% no attack achieves anything notable.
    assert raw["fedrecattack"]["rho=0.005"] < 0.3
