"""Benchmark: regenerate Table VII (effectiveness of all attacks on all datasets).

Paper shape: on every dataset and at every malicious-user proportion,
FedRecAttack dominates the shilling baselines (Random / Bandwagon / Popular),
which achieve (near-)zero exposure at small rho; the sparser the dataset, the
easier the attack (Steam-200K > MovieLens-100K at equal rho).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import BENCH_PROFILE, table7_effectiveness

DATASETS = ("ml-100k", "ml-1m", "steam-200k")
ATTACKS = ("none", "random", "bandwagon", "popular", "fedrecattack")
RHOS = (0.03, 0.05, 0.10)


def test_table7_effectiveness(benchmark, save_result):
    table = run_once(benchmark, table7_effectiveness, BENCH_PROFILE, DATASETS, ATTACKS, RHOS)
    save_result("table7_effectiveness", table.to_text())

    raw = table.raw

    # The clean runs have zero exposure everywhere.
    for dataset in DATASETS:
        for rho in RHOS:
            assert raw[dataset]["none"][f"rho={rho}"]["ER@10"] < 0.05

    # FedRecAttack is the most effective attack on every dataset at rho >= 5%.
    for dataset in DATASETS:
        for rho in (0.05, 0.10):
            fedrec = raw[dataset]["fedrecattack"][f"rho={rho}"]["ER@10"]
            for baseline in ("random", "bandwagon", "popular"):
                assert fedrec >= raw[dataset][baseline][f"rho={rho}"]["ER@10"]

    # FedRecAttack reaches a high exposure ratio at rho = 5% on every dataset
    # while the shilling baselines stay low at small rho on the movie datasets.
    for dataset in DATASETS:
        assert raw[dataset]["fedrecattack"]["rho=0.05"]["ER@10"] > 0.5
    for dataset in ("ml-100k", "ml-1m"):
        for baseline in ("random", "bandwagon"):
            assert raw[dataset][baseline]["rho=0.03"]["ER@10"] < 0.2

    # Sparser datasets are easier to attack: at the smallest rho, Steam-200K's
    # exposure is at least that of MovieLens-100K.
    assert (
        raw["steam-200k"]["fedrecattack"]["rho=0.03"]["ER@10"]
        >= raw["ml-100k"]["fedrecattack"]["rho=0.03"]["ER@10"] - 0.05
    )
