"""Benchmark: serving-layer throughput (cold vs warm cache, batch sizes).

One measurement per dataset shape (synthetic ml-100k / ml-1m miniatures, the
Table II shapes the rest of the perf suite uses):

* **cold** — a fresh :class:`~repro.serving.RecommenderService` answers a
  shuffled stream of single-user queries; every touched block pays its GEMM
  and every user pays masking + threshold selection;
* **warm** — the same service answers the same stream again; every query is
  a memo hit (the per-user cache the serving layer exists for);
* **batch sizes** — fresh services answer the same users through
  ``top_k_batch`` at several batch sizes (one blocked scoring pass per
  touched block per batch).

Correctness first, timing second: before any measurement the module asserts
the serving layer's bit-reproducibility contract — served lists equal an
independent whole-block-GEMM + threshold-rule oracle, batched responses are
bit-identical to single queries, and
:func:`~repro.serving.exposure_under_serving` equals evaluating the
snapshot's model directly.

Gate: warm >= 5x cold queries/sec at the ml-100k shape.  A fast smoke
variant (reduced repeats, lower threshold for noisy shared CI runners) runs
in the CI perf job via ``-k smoke``.  Results land in
``benchmarks/results/perf_serving.json`` / ``.txt``.
"""

from __future__ import annotations

import json
import time

import numpy as np

from conftest import RESULTS_DIR, run_once

from repro.data.presets import get_preset
from repro.data.synthetic import SyntheticConfig, generate_synthetic_dataset
from repro.metrics.evaluation import evaluate_snapshot, user_blocks
from repro.models.mf import MatrixFactorizationModel
from repro.rng import SeedSequenceFactory
from repro.serving import FactorSnapshot, RecommenderService, exposure_under_serving

NUM_FACTORS = 32
NUM_TARGETS = 10
QUERY_USERS = 512
BATCH_SIZES = (1, 32, 256)
MIN_WARM_SPEEDUP = 5.0
GATE_SHAPE = "ml-100k"

#: dataset shape -> interleaved best-of repeats.
SHAPES: dict[str, int] = {
    "ml-100k": 3,
    "ml-1m": 2,
}


def _build(name: str):
    """Synthetic dataset at the paper shape plus a random MF snapshot."""
    preset = get_preset(name)
    dataset = generate_synthetic_dataset(
        SyntheticConfig.from_preset(preset),
        SeedSequenceFactory(2022).generator(f"perf-serving-data-{name}"),
    )
    model = MatrixFactorizationModel(
        dataset.num_users, dataset.num_items, NUM_FACTORS, init_scale=1.0, rng=7
    )
    snapshot = FactorSnapshot.from_model(model, version=1)
    dataset.interaction_store().masks  # build once, outside the timings
    rng = SeedSequenceFactory(2022).generator(f"perf-serving-users-{name}")
    users = rng.permutation(dataset.num_users)[: min(QUERY_USERS, dataset.num_users)]
    return preset, dataset, snapshot, users


def _assert_bit_reproducible(snapshot, dataset, users) -> None:
    """The serving contract, asserted before any timing is trusted."""
    service = RecommenderService(snapshot, dataset)
    model = snapshot.model()
    blocks = user_blocks(snapshot.n_users, service.block_size)
    store = dataset.interaction_store()
    for user in (int(u) for u in users[:32]):
        lo, hi = blocks[user // service.block_size]
        raw_row = model.score_block(np.arange(lo, hi, dtype=np.int64))[user - lo]
        masked = raw_row.copy()
        masked[store.positives(user)] = -np.inf
        expected = np.lexsort((np.arange(masked.shape[0]), -masked))[:10]
        answer = service.top_k(user)
        assert np.array_equal(answer.items, expected), (
            "served top-K must equal the whole-block GEMM + threshold oracle"
        )
        assert np.array_equal(answer.scores, raw_row[expected]), (
            "served scores must be the raw whole-block GEMM floats"
        )

    batch_service = RecommenderService(snapshot, dataset)
    for single, batched in zip(
        (service.top_k(int(user)) for user in users[:64]),
        batch_service.top_k_batch(users[:64]),
    ):
        assert np.array_equal(single.items, batched.items)
        assert np.array_equal(single.scores, batched.scores), (
            "batched responses must be bit-identical to single queries"
        )

    targets = np.argsort(dataset.item_popularity, kind="stable")[:NUM_TARGETS]
    targets = np.ascontiguousarray(targets, dtype=np.int64)
    served = exposure_under_serving(service, targets)
    direct = evaluate_snapshot(
        model, dataset, target_items=targets, rng=0, block_size=service.block_size
    ).exposure
    assert served == direct, (
        "exposure through the serving caches must equal direct evaluation"
    )


def _time_queries(service, users) -> float:
    start = time.perf_counter()
    for user in users:
        service.top_k(user)
    return time.perf_counter() - start


def _measure_shape(name: str, repeats: int) -> dict:
    preset, dataset, snapshot, user_array = _build(name)
    _assert_bit_reproducible(snapshot, dataset, user_array)
    users = [int(user) for user in user_array]

    best_cold = best_warm = float("inf")
    for _ in range(repeats):
        service = RecommenderService(snapshot, dataset)
        best_cold = min(best_cold, _time_queries(service, users))
        # Same stream again: every query is a memo hit.
        best_warm = min(best_warm, _time_queries(service, users))

    batch_qps: dict[str, float] = {}
    for batch_size in BATCH_SIZES:
        best_batch = float("inf")
        for _ in range(repeats):
            service = RecommenderService(snapshot, dataset)
            start = time.perf_counter()
            for lo in range(0, len(users), batch_size):
                service.top_k_batch(users[lo : lo + batch_size])
            best_batch = min(best_batch, time.perf_counter() - start)
        batch_qps[str(batch_size)] = len(users) / best_batch

    cold_qps = len(users) / best_cold
    warm_qps = len(users) / best_warm
    return {
        "dataset": preset.name,
        "num_users": preset.num_users,
        "num_items": preset.num_items,
        "num_factors": NUM_FACTORS,
        "queried_users": len(users),
        "top_k": 10,
        "cold_queries_per_sec": cold_qps,
        "warm_queries_per_sec": warm_qps,
        "warm_speedup": warm_qps / cold_qps,
        "batch_queries_per_sec": batch_qps,
    }


def test_perf_serving(benchmark, save_result):
    payload = run_once(
        benchmark,
        lambda: {
            "shapes": [
                _measure_shape(name, repeats) for name, repeats in SHAPES.items()
            ]
        },
    )

    (RESULTS_DIR / "perf_serving.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    lines = [
        f"Serving throughput ({QUERY_USERS} shuffled single-user queries, "
        f"k=10, factors={NUM_FACTORS})",
    ]
    for shape in payload["shapes"]:
        lines += [
            f"{shape['dataset']} ({shape['num_users']} users / {shape['num_items']} items)",
            f"  cold cache: {shape['cold_queries_per_sec']:10.0f} queries/sec",
            f"  warm cache: {shape['warm_queries_per_sec']:10.0f} queries/sec"
            f"  ({shape['warm_speedup']:.1f}x)",
        ]
        for batch_size, qps in shape["batch_queries_per_sec"].items():
            lines.append(f"  batch={batch_size:>3}:  {qps:10.0f} queries/sec (cold)")
    save_result("perf_serving", "\n".join(lines))

    gate = next(s for s in payload["shapes"] if s["dataset"] == GATE_SHAPE)
    assert gate["warm_speedup"] >= MIN_WARM_SPEEDUP, (
        f"the warm memo cache is only {gate['warm_speedup']:.2f}x faster than cold "
        f"serving at the {GATE_SHAPE} shape (required: {MIN_WARM_SPEEDUP}x)"
    )


# --------------------------------------------------------------------------- #
# CI smoke gate
# --------------------------------------------------------------------------- #

SMOKE_MIN_WARM_SPEEDUP = 3.0


def test_perf_serving_smoke(benchmark):
    """Fast serving-cache regression gate (run by CI via ``-k smoke``).

    One pass at the ml-100k shape; the threshold is deliberately lower than
    the full benchmark's so shared CI runners do not flake, while a genuine
    loss of the memo cache's advantage (far larger when healthy) still fails
    the build.  Bit-reproducibility is asserted inside the measurement
    helper before any timing.
    """
    payload = run_once(benchmark, lambda: _measure_shape(GATE_SHAPE, 1))
    assert payload["warm_speedup"] >= SMOKE_MIN_WARM_SPEEDUP, (
        f"the warm memo cache is only {payload['warm_speedup']:.2f}x faster than "
        f"cold serving in the smoke measurement (required: {SMOKE_MIN_WARM_SPEEDUP}x)"
    )
