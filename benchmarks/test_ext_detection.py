"""Benchmark (extension): gradient-anomaly detection of the attacks.

Section V-D of the paper argues that upload-level anomaly detection performs
poorly in federated recommendation because benign gradients already vary
widely across users.  This extension quantifies that: three detectors
(overall gradient norm, non-zero-row count, gradient concentration) are run
over recorded rounds of three attacks.  The kappa/C constraints of
FedRecAttack are designed precisely to keep its uploads inside the benign
envelope of the row-count detector.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import BENCH_PROFILE
from repro.experiments.tables import detection_table

ATTACKS = ("fedrecattack", "eb", "pipattack")


def test_detection_of_attacks(benchmark, save_result):
    table = run_once(benchmark, detection_table, BENCH_PROFILE, ATTACKS)
    save_result("ext_detection", table.to_text())

    raw = table.raw
    for attack in ATTACKS:
        assert set(raw[attack]) == {"gradient-norm", "nonzero-rows", "target-concentration"}
        for metrics in raw[attack].values():
            assert 0.0 <= metrics["precision"] <= 1.0
            assert 0.0 <= metrics["recall"] <= 1.0
            assert 0.0 <= metrics["fpr"] <= 1.0

    # FedRecAttack's uploads respect kappa, so a row-count detector calibrated
    # to normal user activity never catches them.
    assert raw["fedrecattack"]["nonzero-rows"]["recall"] == 0.0
    # No detector achieves near-perfect detection of FedRecAttack with a
    # negligible false-positive rate — the paper's "hard to detect" claim.
    for metrics in raw["fedrecattack"].values():
        assert not (metrics["recall"] > 0.95 and metrics["fpr"] < 0.01)
