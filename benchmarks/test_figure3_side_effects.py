"""Benchmark: regenerate Figure 3 (training loss and HR@10 under attack).

Paper shape: the training-loss and HR@10 curves of the attacked runs (rho in
{3%, 5%, 10%}) track the clean run closely — the attack's side effects on
recommendation accuracy are negligible, which is what makes it stealthy.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import BENCH_PROFILE, figure3_side_effects

RHOS = (0.03, 0.05, 0.10)


def test_figure3_side_effects_ml100k(benchmark, save_result):
    figure = run_once(
        benchmark, figure3_side_effects, BENCH_PROFILE, "ml-100k", RHOS, 5
    )
    save_result("figure3_side_effects_ml100k", figure.to_text())

    labels = figure.labels()
    assert "None" in labels and len(labels) == 1 + len(RHOS)

    clean = figure.series["None"]
    # Training converges: the loss drops substantially from the first epoch.
    assert clean["training_loss"][-1] < 0.7 * clean["training_loss"][0]
    # HR@10 improves over training in the clean run.
    assert clean["hr_at_10"][-1] >= clean["hr_at_10"][0]

    clean_final_hr = figure.final_hr_at_10("None")
    for rho in RHOS:
        label = f"rho={rho:.0%}"
        attacked = figure.series[label]
        # The attacked loss curve stays in the same regime as the clean one.
        assert attacked["training_loss"][-1] < 1.5 * clean["training_loss"][-1] + 1e-9
        # The final HR@10 under attack stays close to the clean final HR@10.
        assert figure.final_hr_at_10(label) > clean_final_hr - 0.10
