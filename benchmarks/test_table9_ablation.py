"""Benchmark: regenerate Table IX (ablation of the public interactions).

Paper shape: with xi = 1% FedRecAttack is highly effective on every dataset;
with xi = 0% (no public interactions, hence no way to approximate the user
matrix) it collapses to zero everywhere.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import BENCH_PROFILE, table9_ablation

DATASETS = ("ml-100k", "ml-1m", "steam-200k")


def test_table9_ablation(benchmark, save_result):
    table = run_once(benchmark, table9_ablation, BENCH_PROFILE, DATASETS, (0.01, 0.0))
    save_result("table9_ablation", table.to_text())

    raw = table.raw
    for dataset in DATASETS:
        with_public = raw[dataset]["xi=0.01"]
        without_public = raw[dataset]["xi=0.0"]
        # The attack collapses completely without the attacker's prior knowledge.
        assert without_public["ER@5"] < 0.05
        assert without_public["ER@10"] < 0.05
        # And is highly effective with just 1% of interactions public.
        assert with_public["ER@10"] > 0.5
        assert with_public["ER@10"] > without_public["ER@10"] + 0.4
