"""Benchmark: regenerate Table VIII (model-poisoning attacks on MovieLens-1M).

Paper shape: among the model-poisoning attacks, FedRecAttack is the only one
that keeps recommendation accuracy essentially intact (HR@10 within a few
percent of the clean run) while staying highly effective; the other attacks
either fluctuate in effectiveness or noticeably damage HR@10.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import BENCH_PROFILE, table8_model_poisoning

ATTACKS = ("none", "p3", "p4", "eb", "pipattack", "fedrecattack")
RHOS = (0.10, 0.20, 0.30, 0.40)


def test_table8_model_poisoning(benchmark, save_result):
    table = run_once(benchmark, table8_model_poisoning, BENCH_PROFILE, ATTACKS, RHOS)
    save_result("table8_model_poisoning", table.to_text())

    raw = table.raw
    clean_hr = raw["none"]["rho=0.1"]["HR@10"]

    # The clean run has zero target exposure and a meaningfully trained model.
    assert raw["none"]["rho=0.1"]["ER@5"] < 0.05
    assert clean_hr > 0.3

    # FedRecAttack: high effectiveness, negligible accuracy damage at every rho.
    for rho in RHOS:
        key = f"rho={rho}"
        assert raw["fedrecattack"][key]["ER@5"] > 0.5
        assert raw["fedrecattack"][key]["HR@10"] > clean_hr - 0.10

    # FedRecAttack preserves accuracy at least as well as every other attack
    # (averaged over the rho grid) — the paper's stealthiness claim.
    def mean_hr(attack):
        return sum(raw[attack][f"rho={rho}"]["HR@10"] for rho in RHOS) / len(RHOS)

    for attack in ("p3", "p4", "eb", "pipattack"):
        assert mean_hr("fedrecattack") >= mean_hr(attack) - 0.02
