"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures at the
laptop-scale :data:`BENCH_PROFILE` and

* saves the rendered table/figure text under ``benchmarks/results/``,
* asserts the paper's *qualitative* shape (who wins, where the crossover
  falls) — absolute numbers are expected to differ because the substrate is a
  calibrated miniature, not the authors' testbed.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where regenerated tables/figures are written."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Save a rendered table/figure to ``benchmarks/results/<name>.txt``."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")

    return _save


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The experiments are full federated-training runs taking seconds to
    minutes, so the usual calibration/warm-up of pytest-benchmark is disabled.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
