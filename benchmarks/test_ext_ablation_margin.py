"""Benchmark (extension): ablation of the saturating margin transform ``g``.

Section V-D of the paper credits the margin transform ``g`` (Eq. 14) for the
attack's negligible side effects: because ``g``'s derivative vanishes once a
target item clears the recommendation boundary, the attack stops pushing and
the target ends up "exactly a little higher than the last item in the user's
recommendation list".  This ablation replaces ``g`` with a plain linear
margin: the attack then keeps pushing the targets far past the boundary,
which shows up as strictly higher target NDCG/ER@5 (over-promotion) with no
stealth benefit.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import BENCH_PROFILE, ExperimentConfig
from repro.experiments.runner import run_experiment


def _run(margin_mode: str):
    config = BENCH_PROFILE.apply(
        ExperimentConfig(
            dataset="ml-100k",
            attack="fedrecattack",
            rho=0.05,
            attack_options={"margin_mode": margin_mode},
        )
    )
    return run_experiment(config)


def _ablation():
    return {mode: _run(mode) for mode in ("saturating", "linear")}


def test_margin_mode_ablation(benchmark, save_result):
    results = run_once(benchmark, _ablation)
    saturating, linear = results["saturating"], results["linear"]

    lines = ["Extension: ablation of the saturating margin g (ml-100k, rho=5%, xi=1%)"]
    for mode, result in results.items():
        lines.append(
            f"  {mode:<11} ER@5={result.er_at_5:.4f} ER@10={result.er_at_10:.4f} "
            f"NDCG@10={result.target_ndcg_at_10:.4f} HR@10={result.hr_at_10:.4f}"
        )
    save_result("ext_ablation_margin", "\n".join(lines))

    # Both variants are effective attacks.
    assert saturating.er_at_10 > 0.5
    assert linear.er_at_10 > 0.5
    # The linear margin over-promotes the targets: it ranks them at least as
    # high as the saturating variant does (higher ER@5 / target NDCG) ...
    assert linear.er_at_5 >= saturating.er_at_5 - 0.02
    assert linear.target_ndcg_at_10 >= saturating.target_ndcg_at_10 - 0.02
    # ... without any stealth advantage: the saturating variant's accuracy is
    # at least as good as the linear one's.
    assert saturating.hr_at_10 >= linear.hr_at_10 - 0.05
